//! The [`Database`] facade: thread-safe entry point for live transactions.
//!
//! A `Database` owns one shard thread per site plus the background deadlock
//! detector. Any number of client threads may concurrently open
//! transactions; each client thread *is* the request issuer of its own
//! transaction — it drives the sans-IO [`RequestIssuer`] state machine,
//! blocking on an event channel for queue-manager replies, exactly the way
//! the simulator drives it from the event loop. Restarts (T/O rejections,
//! deadlock victims) are retried transparently under a fresh transaction id
//! and a larger timestamp, up to [`RuntimeConfig::max_restarts`] attempts.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dbmodel::{
    AccessMode, Catalog, CatalogError, CcMethod, LogSet, LogicalItemId, SiteId, Timestamp,
    Transaction, TsTuple, TxnId, Value,
};
use metrics::{SimMetrics, TxnOutcome};
use pam::{ReplyMsg, RequestMsg};
use selection::{
    classify, is_read_only, CachedStlSelector, Confluence, OpProfile, SelectionDecision,
    StlSelector, WorkloadSignal,
};
use simkit::rng::SimRng;
use simkit::time::SimTime;
use trace::{Phase, SpanTimings, TraceLevel, TracePlane, SELECTION_CACHE_HIT};
use transport::mailbox::MailboxOptions;
use unified_cc::{ConfluentOp, QueueManager, RequestIssuer, RiAction, RiOutput};

use crate::config::{CcPolicy, ConfigError, RuntimeConfig, TransportKind};
use crate::detector;
use crate::registry::{ClientEvent, ClientMailbox, ClientRecvError, Registry};
use crate::report::RuntimeReport;
use crate::shard::{self, ShardCmd, ShardHandle, ShardSender};
use crate::stats::{MetricsShards, RuntimeStats, StatsSnapshot};

/// How often a blocked client re-checks whether the database is shutting
/// down underneath it.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// The predeclared shape of one transaction: its read and write sets, and
/// optionally a pinned origin site and concurrency-control method.
#[derive(Debug, Clone, Default)]
pub struct TxnSpec {
    reads: Vec<LogicalItemId>,
    writes: Vec<LogicalItemId>,
    /// Commutative increments (`item += delta`): confluent, fast-path
    /// eligible. On the coordinated path they stage
    /// `predecessor.wrapping_add(delta)` from the write grant's value.
    adds: Vec<(LogicalItemId, Value)>,
    /// Blind absolute writes (`item = value`): confluent, fast-path
    /// eligible.
    puts: Vec<(LogicalItemId, Value)>,
    origin: Option<SiteId>,
    method: Option<CcMethod>,
}

impl TxnSpec {
    /// An empty spec.
    pub fn new() -> Self {
        TxnSpec::default()
    }

    /// Add a logical item to the read set.
    pub fn read(mut self, item: LogicalItemId) -> Self {
        self.reads.push(item);
        self
    }

    /// Add a logical item to the write set.
    pub fn write(mut self, item: LogicalItemId) -> Self {
        self.writes.push(item);
        self
    }

    /// Add several logical items to the read set.
    pub fn reads<I: IntoIterator<Item = LogicalItemId>>(mut self, items: I) -> Self {
        self.reads.extend(items);
        self
    }

    /// Add several logical items to the write set.
    pub fn writes<I: IntoIterator<Item = LogicalItemId>>(mut self, items: I) -> Self {
        self.writes.extend(items);
        self
    }

    /// Add a commutative increment: `item += delta` (wrapping). Confluent —
    /// eligible for the coordination-avoidance fast path of
    /// [`Database::execute`].
    pub fn add(mut self, item: LogicalItemId, delta: Value) -> Self {
        self.adds.push((item, delta));
        self
    }

    /// Add a blind absolute write: `item = value` (last-writer-wins).
    /// Confluent — eligible for the coordination-avoidance fast path of
    /// [`Database::execute`].
    pub fn put(mut self, item: LogicalItemId, value: Value) -> Self {
        self.puts.push((item, value));
        self
    }

    /// Pin the origin site (default: round-robin over sites).
    pub fn origin(mut self, site: SiteId) -> Self {
        self.origin = Some(site);
        self
    }

    /// Pin the concurrency-control method, overriding the database policy.
    pub fn method(mut self, method: CcMethod) -> Self {
        self.method = Some(method);
        self
    }

    /// Every logical item this spec writes — declared writes, adds and
    /// puts — deduplicated, as the coordinated path's write set.
    fn write_items(&self) -> Vec<LogicalItemId> {
        let mut items: Vec<LogicalItemId> = self
            .writes
            .iter()
            .copied()
            .chain(self.adds.iter().map(|&(item, _)| item))
            .chain(self.puts.iter().map(|&(item, _)| item))
            .collect();
        items.sort_unstable();
        items.dedup();
        items
    }
}

/// A served snapshot read: the assigned transaction id and the values
/// observed at one watermark cut. `None` means the spec is not
/// snapshot-eligible (or the plane is disabled) and the caller should
/// route through coordination instead.
type SnapshotAnswer = Option<(TxnId, BTreeMap<LogicalItemId, Value>)>;

/// Why a transaction could not run to commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The spec names a logical item the catalog does not know.
    UnknownItem(CatalogError),
    /// The transaction was restarted `attempts` times without reaching its
    /// execution phase.
    TooManyRestarts {
        /// Number of attempts made.
        attempts: u32,
    },
    /// A write was staged for an item outside the transaction's write set.
    NotInWriteSet(LogicalItemId),
    /// Every one of the reply plane's `reply_max_clients` mailboxes
    /// stayed held by an open transaction for the whole bounded acquire
    /// wait — the admission limit, reported instead of blocking `begin`
    /// forever.
    ReplyPlaneExhausted {
        /// The configured `reply_max_clients` limit.
        max_clients: usize,
    },
    /// The database shut down while the transaction was in flight.
    ShuttingDown,
    /// A shard stopped answering within the configured deadline
    /// ([`crate::RuntimeConfig::request_timeout`] /
    /// [`crate::RuntimeConfig::commit_timeout`] /
    /// [`crate::RuntimeConfig::diagnostic_timeout`]), and the bounded
    /// retry budget is exhausted. Before the execution phase this is a
    /// clean failure (nothing was implemented); at commit time the
    /// transaction's writes were already implemented when its locks
    /// demoted — the outcome is *decided but unacknowledged*, never a
    /// partial commit.
    ShardUnavailable,
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::UnknownItem(e) => write!(f, "{e}"),
            TxnError::TooManyRestarts { attempts } => {
                write!(f, "transaction gave up after {attempts} restarts")
            }
            TxnError::NotInWriteSet(item) => {
                write!(f, "item {item} is not in the transaction's write set")
            }
            TxnError::ReplyPlaneExhausted { max_clients } => write!(
                f,
                "all {max_clients} reply mailboxes are held by open transactions \
                 (raise RuntimeConfig::reply_max_clients or commit sooner)"
            ),
            TxnError::ShuttingDown => write!(f, "database is shutting down"),
            TxnError::ShardUnavailable => write!(
                f,
                "a shard stopped answering within the configured deadline"
            ),
        }
    }
}

impl std::error::Error for TxnError {}

/// What a committed transaction observed.
#[derive(Debug, Clone)]
pub struct TxnReceipt {
    /// Transaction id of the committed incarnation.
    pub id: TxnId,
    /// The method the committed incarnation ran under. Fast-path commits
    /// bypass the protocols entirely and report the default method as a
    /// placeholder — check [`TxnReceipt::fastpath`].
    pub method: CcMethod,
    /// Restart attempts before the committed incarnation (0 = first try).
    pub restarts: u32,
    /// The values read, keyed by logical item.
    pub reads: BTreeMap<LogicalItemId, Value>,
    /// True when the transaction committed through the
    /// coordination-avoidance bypass (no grants, no queue time).
    pub fastpath: bool,
    /// True when the transaction was served from the MVCC snapshot plane
    /// at the global read watermark (read-only; no coordination at all).
    pub snapshot: bool,
}

/// The dynamic-policy selector engine: the amortized cached variant (the
/// default) or the per-transaction fresh evaluation kept for overhead
/// comparisons. Both produce identical decisions within an epoch.
enum SelectorEngine {
    Cached(Box<CachedStlSelector>),
    Fresh(StlSelector),
}

impl SelectorEngine {
    /// Decide a method. The cached engine reads the (striped) metrics
    /// lazily — only on warm-up, drift probes and epoch re-fits; the
    /// fresh engine merges them on every call, which is exactly the
    /// pre-cache overhead the `dyn-fresh` benchmark rows measure.
    fn select<F: FnOnce() -> SimMetrics>(
        &mut self,
        txn: &Transaction,
        catalog: &Catalog,
        signal: WorkloadSignal,
        commits: u64,
        merge: F,
    ) -> SelectionDecision {
        match self {
            SelectorEngine::Cached(c) => c.select_sharded(txn, catalog, signal, commits, merge),
            SelectorEngine::Fresh(s) => s.select(txn, catalog, &merge()),
        }
    }
}

struct Inner {
    config: RuntimeConfig,
    catalog: Catalog,
    registry: Arc<Registry>,
    shard_txs: Vec<ShardSender>,
    site_index: HashMap<SiteId, usize>,
    stats: Arc<RuntimeStats>,
    /// Thread-striped metric shards: the commit path records into its own
    /// stripe; stripes are merged only at epoch-refit boundaries and at
    /// shutdown. There is no global metrics mutex.
    metrics: MetricsShards,
    selector: Mutex<SelectorEngine>,
    mix_rng: Mutex<SimRng>,
    /// Per-method selection tally, indexed by [`method_code`] — a fixed
    /// atomic array, the last lock the stats read path used to take.
    /// [`Database::shutdown`] folds it back into the report's `BTreeMap`.
    selection_counts: [AtomicU64; 3],
    next_txn_id: AtomicU64,
    ts_counter: AtomicU64,
    started: Instant,
    stopped: Arc<AtomicBool>,
    /// The armed fault-injection plane wrapping the client→shard
    /// transport boundary (`None` when the config schedules no faults).
    faults: Option<Arc<faultsim::FaultPlane>>,
    /// The flight-recorder tracing plane (see [`trace`]); shared with the
    /// shard threads and the deadlock detector.
    trace: Arc<TracePlane>,
    /// The global commit clock: coordinated commits draw/retire their
    /// stamp here; snapshot reads load its watermark. Shared with the
    /// shard threads (fast-path stamping and version-chain pruning).
    clock: Arc<crate::clock::CommitClock>,
    /// Keeps the serializability-violation observer alive: a failing
    /// oracle replay anywhere in the process latches this database's
    /// postmortem dump.
    _sercheck_guard: Option<sercheck::ObserverGuard>,
    // Taken exactly once, by whoever performs the shutdown.
    #[allow(clippy::type_complexity)]
    teardown: Mutex<Option<(Vec<ShardHandle>, Sender<()>, JoinHandle<()>)>>,
}

/// A live, sharded, multi-threaded database running the unified
/// concurrency-control engine. Cheap to clone; all clones share the same
/// shards.
#[derive(Clone)]
pub struct Database {
    inner: Arc<Inner>,
}

impl Database {
    /// Start the shard threads and the deadlock detector.
    pub fn open(config: RuntimeConfig) -> Result<Database, ConfigError> {
        config.validate()?;
        let catalog = Catalog::generate(config.num_shards, config.num_items, config.replication);
        Self::open_with_catalog(config, catalog)
    }

    /// Start a database over an explicit catalog (one shard per catalog
    /// site). The item-placement fields of `config` are ignored.
    pub fn open_with_catalog(
        config: RuntimeConfig,
        catalog: Catalog,
    ) -> Result<Database, ConfigError> {
        config.validate()?;
        let registry = Arc::new(Registry::with_options(
            config.reply_plane,
            MailboxOptions {
                index_capacity: config.reply_index_capacity,
                index_max_capacity: config.reply_index_max_capacity,
                mailbox_capacity: config.reply_mailbox_capacity,
                max_clients: config.reply_max_clients,
                deliver_timeout: config.reply_deliver_timeout,
                ..MailboxOptions::default()
            },
        ));
        let stats = Arc::new(RuntimeStats::with_shards(catalog.sites().len()));
        let stopped = Arc::new(AtomicBool::new(false));
        let plane = Arc::new(TracePlane::new(&config.trace, catalog.sites().len()));
        let clock = Arc::new(crate::clock::CommitClock::new());

        let mut shard_handles = Vec::new();
        let mut shard_txs = Vec::new();
        let mut site_index = HashMap::new();
        for (idx, &site) in catalog.sites().iter().enumerate() {
            let mut qm = QueueManager::from_catalog(
                site,
                &catalog,
                config.initial_value,
                config.enforcement,
            );
            qm.set_dedup_access(config.dedup_access);
            qm.set_version_retain(config.version_retain);
            qm.set_snapshot_validation(config.snapshot_validation);
            let (tx, rx) = shard::inbox_pair(config.transport, config.shard_inbox_capacity);
            if plane.level() == TraceLevel::Full {
                // Queue-dwell stamping on the batched ring: each slot
                // carries its enqueue time, the consumer accumulates the
                // dwell — the `qu/blk` segment's transport-side witness.
                if let shard::ShardSender::Ring(ring) = &tx {
                    ring.set_stamping(true);
                }
            }
            let handle = shard::spawn(
                qm,
                idx,
                rx,
                tx.clone(),
                Arc::clone(&registry),
                Arc::clone(&stats),
                Arc::clone(&plane),
                Arc::clone(&clock),
            );
            shard_txs.push(tx);
            site_index.insert(site, idx);
            shard_handles.push(handle);
        }

        let (stop_tx, stop_rx) = mpsc::channel();
        let detector_join = detector::spawn(
            shard_txs.clone(),
            Arc::clone(&registry),
            Arc::clone(&stats),
            Arc::clone(&plane),
            config.deadlock_scan_interval,
            stop_rx,
            Arc::clone(&stopped),
        );

        // A serializability violation observed anywhere in the process
        // (the oracle is global) latches this database's postmortem dump.
        // Installed only when a dump could actually be written.
        let sercheck_guard =
            if plane.level() == TraceLevel::Full && config.trace.postmortem_dir.is_some() {
                let weak = Arc::downgrade(&plane);
                Some(sercheck::observe_violations(move |_err| {
                    if let Some(plane) = weak.upgrade() {
                        let _ = plane.trigger_postmortem("sercheck-violation");
                    }
                }))
            } else {
                None
            };

        let selector = match config.selection_cache {
            Some(settings) => {
                SelectorEngine::Cached(Box::new(CachedStlSelector::with_settings(settings)))
            }
            None => SelectorEngine::Fresh(StlSelector::new()),
        };
        let faults = config
            .faults
            .clone()
            .map(|schedule| Arc::new(faultsim::FaultPlane::new(schedule)));
        Ok(Database {
            inner: Arc::new(Inner {
                mix_rng: Mutex::new(SimRng::new(config.seed)),
                catalog,
                registry,
                shard_txs,
                site_index,
                stats,
                metrics: MetricsShards::new(),
                selector: Mutex::new(selector),
                selection_counts: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
                next_txn_id: AtomicU64::new(0),
                ts_counter: AtomicU64::new(0),
                started: Instant::now(),
                stopped,
                faults,
                trace: plane,
                clock,
                _sercheck_guard: sercheck_guard,
                teardown: Mutex::new(Some((shard_handles, stop_tx, detector_join))),
                config,
            }),
        })
    }

    /// The replication catalog the shards were built from.
    pub fn catalog(&self) -> &Catalog {
        &self.inner.catalog
    }

    /// Number of shard threads.
    pub fn num_shards(&self) -> usize {
        self.inner.shard_txs.len()
    }

    /// A snapshot of the runtime counters, including the selection-cache
    /// counters when the dynamic policy runs cached. Reads only atomics —
    /// stats polling never takes the selector mutex, so it cannot contend
    /// with admission — and is side-effect-free (the mailbox-overflow
    /// postmortem fires on the registration that overflows, in `begin`,
    /// not here).
    pub fn stats(&self) -> StatsSnapshot {
        let mut snapshot = self.inner.stats.snapshot();
        snapshot.stale_reply_events = self.inner.registry.stale_reply_events();
        snapshot.mailbox_overflow_entries = self.inner.registry.overflow_entries() as u64;
        snapshot.mailbox_index_capacity = self.inner.registry.index_capacity() as u64;
        snapshot.mailbox_index_resizes = self.inner.registry.index_resizes();
        snapshot.mailbox_full_drops = self.inner.registry.full_drops();
        snapshot.trace_events = self.inner.trace.events_recorded();
        snapshot
    }

    /// The Section-5-style phase breakdown accumulated by the tracing
    /// plane so far: per-method segment histograms whose means telescope
    /// exactly to the measured end-to-end latency, global phase-event
    /// counters, and (on the batched-ring transport at
    /// [`TraceLevel::Full`]) the per-shard inbox dwell meters. Empty at
    /// [`TraceLevel::Off`].
    pub fn trace_report(&self) -> trace::TraceReport {
        let mut report = self.inner.trace.report();
        report.transport_dwell = self
            .inner
            .shard_txs
            .iter()
            .enumerate()
            .filter_map(|(shard, tx)| match tx {
                shard::ShardSender::Ring(ring) => {
                    let (messages, nanos) = ring.queue_dwell();
                    (messages > 0).then(|| trace::LaneDwell {
                        shard,
                        messages,
                        mean_dwell_us: nanos as f64 / messages as f64 / 1_000.0,
                    })
                }
                shard::ShardSender::Mpsc(_) => None,
            })
            .collect();
        report
    }

    /// A snapshot of every flight-recorder lane's surviving events
    /// (empty below [`TraceLevel::Full`]). Feed it to
    /// [`trace::TraceLog::from_events`] to reconstruct span trees.
    pub fn trace_snapshot(&self) -> Vec<trace::TraceEvent> {
        self.inner.trace.snapshot()
    }

    /// Number of transactions currently live (requesting, executing or
    /// releasing).
    pub fn live_transactions(&self) -> usize {
        self.inner.registry.len()
    }

    /// Transactions currently queued at some shard without a grant
    /// (diagnostics). Bounded: a shard that does not answer within
    /// [`crate::RuntimeConfig::diagnostic_timeout`] (e.g. mid-outage
    /// under the fault plane) is skipped rather than blocking the caller
    /// forever.
    pub fn waiting_transactions(&self) -> Vec<TxnId> {
        let deadline = self.inner.config.diagnostic_timeout;
        let mut waiting = Vec::new();
        for shard in &self.inner.shard_txs {
            let (tx, rx) = transport::oneshot::channel();
            if shard.send(ShardCmd::Waiting(tx)).is_ok() {
                if let Ok(mut txns) = rx.recv_timeout(deadline) {
                    waiting.append(&mut txns);
                }
            }
        }
        waiting.sort_unstable();
        waiting.dedup();
        waiting
    }

    /// A live copy of the execution log accumulated so far, merged across
    /// shards — the tap the serializability oracle replays. Bounded like
    /// [`Database::waiting_transactions`]: an unresponsive shard's slice
    /// is missing from the snapshot instead of hanging the caller.
    pub fn log_snapshot(&self) -> LogSet {
        let deadline = self.inner.config.diagnostic_timeout;
        let mut merged = LogSet::new();
        for shard in &self.inner.shard_txs {
            let (tx, rx) = transport::oneshot::channel();
            if shard.send(ShardCmd::LogSnapshot(tx)).is_ok() {
                if let Ok(slice) = rx.recv_timeout(deadline) {
                    merge_logs(&mut merged, &slice);
                }
            }
        }
        merged
    }

    /// Deactivate the fault plane and flush every message it still holds
    /// (delayed and partition-buffered) to its destination shard. Call
    /// before draining a chaos run so invariants are checked against a
    /// fully delivered history. No-op without an armed fault plane.
    pub fn quiesce_faults(&self) {
        if let Some(plane) = &self.inner.faults {
            plane.quiesce(|link, msg| {
                // The flushed message's origin is lost with the buffer;
                // precedence tie-breaking by origin only needs *a* site,
                // and the destination's own id is deterministic.
                let origin = self.inner.catalog.sites()[link];
                let _ = self.inner.shard_txs[link].send(ShardCmd::Handle { origin, msg });
            });
        }
    }

    /// Counters of every fault the armed plane injected so far (`None`
    /// without a fault schedule).
    pub fn fault_counters(&self) -> Option<faultsim::FaultCounters> {
        self.inner.faults.as_ref().map(|plane| plane.counters())
    }

    /// Force an epoch re-fit of the cached dynamic selector right now,
    /// merging the metric stripes outside any commit-path lock. Returns
    /// `false` when the policy does not run a cached selector. Useful for
    /// diagnostics and for tests that pin epoch boundaries.
    pub fn force_refit(&self) -> bool {
        let now = self.now();
        let signal = WorkloadSignal {
            grants: self.inner.stats.grants.load(Ordering::Relaxed),
            conflicts: self.inner.stats.prescheduled_grants(),
        };
        // Merge *before* taking the selector mutex: admission stays free
        // to run while the stripes are folded.
        let merged = self.inner.metrics.merged(now);
        let mut selector = self.inner.selector.lock().expect("selector poisoned");
        match &mut *selector {
            SelectorEngine::Cached(c) => {
                c.refit_now(&merged, signal);
                let cs = c.cache_stats();
                drop(selector);
                self.inner.stats.publish_cache_stats(cs);
                true
            }
            SelectorEngine::Fresh(_) => false,
        }
    }

    /// Open a transaction and drive it to its execution phase: all requests
    /// granted, read values in hand. Restarts are retried internally.
    ///
    /// Pure read-only shapes (with
    /// [`crate::RuntimeConfig::snapshot_reads`] on, no pinned method) are
    /// served from the MVCC snapshot plane instead: the returned
    /// transaction already holds its reads — observed at the global read
    /// watermark, with no locks, queue entries or restart exposure —
    /// and its [`ActiveTxn::commit`] is a pure local accounting step.
    /// Staging a write on such a transaction fails with
    /// [`TxnError::NotInWriteSet`], exactly as it would on the
    /// coordinated path.
    ///
    /// The reply endpoint is acquired **once** here and reused across
    /// every restart incarnation — on the mailbox plane that is the
    /// whole point of the slab: registration re-arms the same mailbox
    /// under the new transaction id instead of allocating a channel.
    pub fn begin(&self, spec: &TxnSpec) -> Result<ActiveTxn, TxnError> {
        let inner = &self.inner;
        if inner.config.snapshot_reads {
            if let Some((txn_id, reads)) = self.snapshot_read_values(spec)? {
                let origin = spec
                    .origin
                    .unwrap_or_else(|| inner.catalog.origin_for(txn_id));
                let txn = Transaction::builder(txn_id, origin)
                    .reads(spec.reads.iter().copied())
                    .build();
                // A snapshot transaction never talks to a queue manager:
                // its issuer exists only to carry the id/shape (empty
                // access list, never started, never registered).
                let ri = RequestIssuer::new(
                    txn,
                    TsTuple::new(Timestamp::ZERO, inner.config.pa_backoff_interval),
                    Vec::new(),
                );
                return Ok(ActiveTxn::new_snapshot(
                    self.clone(),
                    ri,
                    reads,
                    inner.trace.client_lane(),
                ));
            }
        }
        let plane = &inner.trace;
        let lane = plane.client_lane();
        let mut mailbox =
            inner
                .registry
                .client_mailbox()
                .map_err(|e| TxnError::ReplyPlaneExhausted {
                    max_clients: e.max_clients,
                })?;
        let mut attempt: u32 = 0;
        loop {
            if inner.stopped.load(Ordering::Relaxed) {
                return Err(TxnError::ShuttingDown);
            }
            let t_begin = plane.now();
            let hits_before = inner.stats.cache_hits.load(Ordering::Relaxed);
            let method = spec.method.unwrap_or_else(|| self.pick_method(spec));
            let t_sel = plane.now();
            // Approximate under concurrency (the mirror is global), but
            // exact on single-threaded runs — good enough for the
            // hit-rate the selection-done arg carries.
            let cache_hit = inner.stats.cache_hits.load(Ordering::Relaxed) > hits_before;
            let txn_id = TxnId(inner.next_txn_id.fetch_add(1, Ordering::Relaxed) + 1);
            plane.record_at(lane, t_begin, txn_id.0, Phase::Begin, attempt);
            let sel_arg = method_code(method) | if cache_hit { SELECTION_CACHE_HIT } else { 0 };
            plane.record_at(lane, t_sel, txn_id.0, Phase::SelectionDone, sel_arg);
            let ts = Timestamp(inner.ts_counter.fetch_add(1, Ordering::Relaxed) + 1);
            let origin = spec
                .origin
                .unwrap_or_else(|| inner.catalog.origin_for(txn_id));
            let txn = Transaction::builder(txn_id, origin)
                .method(method)
                .reads(spec.reads.iter().copied())
                .writes(spec.write_items())
                .build();
            let accesses: Vec<(dbmodel::PhysicalItemId, AccessMode)> = inner
                .catalog
                .translate_txn(&txn)
                .map_err(TxnError::UnknownItem)?
                .into_iter()
                .map(|op| (op.item, op.mode))
                .collect();

            if inner.registry.register(txn_id, method, &mut mailbox) {
                // This registration fell off the lock-free path onto the
                // overflow map — the transition into a degraded reply
                // plane is the anomaly worth a flight-recorder dump
                // (latched; no-op without a dump dir).
                let _ = plane.trigger_postmortem("mailbox-overflow");
            }
            let mut ri = RequestIssuer::new(
                txn,
                TsTuple::new(ts, inner.config.pa_backoff_interval),
                accesses,
            );
            let begun = Instant::now();
            let out = ri.start();
            let started_exec = out.actions.contains(&RiAction::StartExecution);
            let n_sends = out.sends.len() as u32;
            if let Err(e) = self.route_all(origin, out.sends) {
                inner.registry.deregister(txn_id);
                return Err(e);
            }
            let t_enq = plane.now();
            plane.record_at(lane, t_enq, txn_id.0, Phase::TransportEnqueued, n_sends);
            let timings = |exec_start: u64| SpanTimings {
                begin: t_begin,
                selection_done: t_sel,
                enqueued: t_enq,
                exec_start,
                ..SpanTimings::default()
            };
            if started_exec {
                // Degenerate empty transaction: straight to execution.
                let t_exec = plane.now();
                plane.record_at(lane, t_exec, txn_id.0, Phase::ExecutionStart, 0);
                return Ok(ActiveTxn::new(
                    self.clone(),
                    ri,
                    mailbox,
                    begun,
                    attempt,
                    lane,
                    timings(t_exec),
                ));
            }

            match self.wait_for_execution(&mut ri, &mut mailbox, origin, method, lane)? {
                WaitOutcome::Executing => {
                    let t_exec = plane.now();
                    plane.record_at(lane, t_exec, txn_id.0, Phase::ExecutionStart, 0);
                    return Ok(ActiveTxn::new(
                        self.clone(),
                        ri,
                        mailbox,
                        begun,
                        attempt,
                        lane,
                        timings(t_exec),
                    ));
                }
                WaitOutcome::Restart { rejected } => {
                    inner.registry.deregister(txn_id);
                    let t_restart = plane.now();
                    let outcome = if rejected {
                        inner
                            .stats
                            .rejected_restarts
                            .fetch_add(1, Ordering::Relaxed);
                        plane.record_at(lane, t_restart, txn_id.0, Phase::RestartRejected, 0);
                        TxnOutcome::RejectedRestart
                    } else {
                        inner
                            .stats
                            .deadlock_restarts
                            .fetch_add(1, Ordering::Relaxed);
                        plane.record_at(lane, t_restart, txn_id.0, Phase::RestartDeadlock, 0);
                        TxnOutcome::DeadlockRestart
                    };
                    plane.record_restart(method, t_restart.saturating_sub(t_begin));
                    inner.metrics.with_local(|m| {
                        m.record_restart(method, outcome);
                        m.record_lock_hold(
                            method,
                            simkit::time::Duration::from_secs_f64(begun.elapsed().as_secs_f64()),
                            true,
                        );
                    });
                    attempt += 1;
                    if attempt > inner.config.max_restarts {
                        inner.stats.failed.fetch_add(1, Ordering::Relaxed);
                        return Err(TxnError::TooManyRestarts { attempts: attempt });
                    }
                    self.restart_pause(txn_id, attempt);
                }
                WaitOutcome::TimedOut => {
                    // Abort the incarnation's residual queue state (best
                    // effort — the Aborts cross the fault plane too; the
                    // detector's stranded-transaction sweep covers
                    // whatever they don't reach) and retry under a fresh
                    // id. Exhausting the budget is a clean
                    // `ShardUnavailable`: nothing of this transaction was
                    // ever implemented.
                    let aborts: Vec<RequestMsg> = ri
                        .accessed_items()
                        .map(|(item, _)| RequestMsg::Abort { txn: txn_id, item })
                        .collect();
                    let _ = self.route_all(origin, aborts);
                    inner.registry.deregister(txn_id);
                    inner.stats.timeout_restarts.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    if attempt > inner.config.max_restarts {
                        inner
                            .stats
                            .shard_unavailable
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(TxnError::ShardUnavailable);
                    }
                    self.restart_pause(txn_id, attempt);
                }
            }
        }
    }

    /// Run one transaction end to end: open it, call `compute` with the
    /// values read, stage the writes `compute` returns, commit. `compute`
    /// may run more than once if the transaction restarts between opening
    /// and committing — it must be a pure function of the values read.
    pub fn run_transaction<F>(&self, spec: &TxnSpec, mut compute: F) -> Result<TxnReceipt, TxnError>
    where
        F: FnMut(&BTreeMap<LogicalItemId, Value>) -> Vec<(LogicalItemId, Value)>,
    {
        let mut txn = self.begin(spec)?;
        let writes = compute(txn.reads());
        for (item, value) in writes {
            txn.write(item, value)?;
        }
        txn.commit()
    }

    /// Run one predeclared transaction end to end, routing it around the
    /// queue managers when its shape is invariant confluent — or, for
    /// pure read-only shapes, around *everything*: with
    /// [`crate::RuntimeConfig::snapshot_reads`] on, a shape classified
    /// read-only (see [`selection::is_read_only`]) is served from the
    /// per-item version chains at the global read watermark — no grants,
    /// no wait edges, no restart exposure — and its receipt reports
    /// [`TxnReceipt::snapshot`]. A shard that cannot serve the watermark
    /// (chain pruned past it) refuses, counted in
    /// [`StatsSnapshot::snapshot_refused`], and the transaction falls
    /// through to the paths below.
    ///
    /// Shapes built only from reads, [`TxnSpec::add`]s and
    /// [`TxnSpec::put`]s classify as [`Confluence::ConfluentFastPath`]
    /// (see [`selection::classify`]) and are applied by the owning shard
    /// in one direct command — no grants, no precedence entries, no
    /// deadlock exposure. The owning queue manager still *refuses* the
    /// bypass whenever a touched slot has queued or granted coordinated
    /// work; on refusal — and for every non-confluent, pinned-method,
    /// replicated-item or (with the safety check on) multi-site shape —
    /// the transaction transparently runs the coordinated
    /// `begin`/stage/`commit` path instead. Fast-path commits and
    /// refusals surface in [`StatsSnapshot::fastpath_applied`] /
    /// [`StatsSnapshot::fastpath_refused`].
    pub fn execute(&self, spec: &TxnSpec) -> Result<TxnReceipt, TxnError> {
        // Read-only shapes try the MVCC snapshot plane first — even less
        // coordination than the confluent bypass (no at-apply refusal
        // window to lose: a watermark read conflicts with nothing).
        if self.inner.config.snapshot_reads {
            if let Some((txn_id, reads)) = self.snapshot_read_values(spec)? {
                let inner = &self.inner;
                inner.stats.committed.fetch_add(1, Ordering::Relaxed);
                let plane = &inner.trace;
                plane.record(plane.client_lane(), txn_id.0, Phase::Committed, 0);
                return Ok(TxnReceipt {
                    id: txn_id,
                    method: CcMethod::TwoPhaseLocking,
                    restarts: 0,
                    reads,
                    fastpath: false,
                    snapshot: true,
                });
            }
        }
        if self.inner.config.confluence_fastpath {
            if let Some(receipt) = self.try_fastpath(spec)? {
                return Ok(receipt);
            }
        }
        self.execute_coordinated(spec)
    }

    /// The coordinated half of [`Database::execute`]: a normal
    /// `begin`/stage/`commit` incarnation. `add` ops stage the
    /// predecessor value the write grant carried plus their (per-item
    /// accumulated) delta; `put` ops stage their value directly.
    fn execute_coordinated(&self, spec: &TxnSpec) -> Result<TxnReceipt, TxnError> {
        let mut txn = self.begin(spec)?;
        let mut deltas: BTreeMap<LogicalItemId, Value> = BTreeMap::new();
        for &(item, delta) in &spec.adds {
            let slot = deltas.entry(item).or_insert(0);
            *slot = slot.wrapping_add(delta);
        }
        for (&item, &delta) in &deltas {
            let base = txn.read(item).unwrap_or(0);
            txn.write(item, base.wrapping_add(delta))?;
        }
        for &(item, value) in &spec.puts {
            txn.write(item, value)?;
        }
        txn.commit()
    }

    /// Attempt the coordination-avoidance bypass. `Ok(None)` means "run
    /// coordinated": the shape is not confluent, the spec pins a method,
    /// a written item is replicated, the footprint spans several sites
    /// while the safety check is on (the bypass is atomic only within
    /// one shard's command order), or the owning queue manager refused.
    fn try_fastpath(&self, spec: &TxnSpec) -> Result<Option<TxnReceipt>, TxnError> {
        let inner = &self.inner;
        if spec.method.is_some() {
            return Ok(None);
        }
        let mut profile = OpProfile::empty();
        if !spec.reads.is_empty() {
            profile = profile.with(OpProfile::READS);
        }
        if !spec.adds.is_empty() {
            profile = profile.with(OpProfile::ADDS);
        }
        if !spec.puts.is_empty() {
            profile = profile.with(OpProfile::PUTS);
        }
        if !spec.writes.is_empty() {
            // Declared read-modify-write items: their commit values come
            // from arbitrary computation over coordinated reads.
            profile = profile.with(OpProfile::RMW_WRITES);
        }
        let writes = spec.adds.len() + spec.puts.len() + spec.writes.len();
        // Pure classification — identical to the verdict the routed
        // selection cache memoizes for this profile (classification is
        // model-independent by construction), so the bypass gate never
        // takes the selector mutex.
        if classify(profile, spec.reads.len(), writes) == Confluence::Coordinated {
            return Ok(None);
        }
        let plane = &inner.trace;
        let lane = plane.client_lane();
        let t_begin = plane.now();
        let txn_id = TxnId(inner.next_txn_id.fetch_add(1, Ordering::Relaxed) + 1);
        let origin = spec
            .origin
            .unwrap_or_else(|| inner.catalog.origin_for(txn_id));
        // Translate: reads go to the preferred copy, adds/puts to the
        // single physical copy. Replicated written items fall back to the
        // coordinated path, which knows how to fan a write out.
        let mut per_site: BTreeMap<SiteId, Vec<ConfluentOp>> = BTreeMap::new();
        for &item in &spec.reads {
            let copy = inner
                .catalog
                .read_copy(item, origin)
                .map_err(TxnError::UnknownItem)?;
            per_site
                .entry(copy.site)
                .or_default()
                .push(ConfluentOp::Read(copy));
        }
        for &(item, delta) in &spec.adds {
            let copies = inner
                .catalog
                .physical_copies(item)
                .map_err(TxnError::UnknownItem)?;
            if copies.len() != 1 {
                return Ok(None);
            }
            per_site
                .entry(copies[0].site)
                .or_default()
                .push(ConfluentOp::Add(copies[0], delta));
        }
        for &(item, value) in &spec.puts {
            let copies = inner
                .catalog
                .physical_copies(item)
                .map_err(TxnError::UnknownItem)?;
            if copies.len() != 1 {
                return Ok(None);
            }
            per_site
                .entry(copies[0].site)
                .or_default()
                .push(ConfluentOp::Put(copies[0], value));
        }
        let check = inner.config.confluence_check;
        if check && per_site.len() != 1 {
            return Ok(None);
        }
        let mut n_ops = 0u32;
        let mut pending = Vec::with_capacity(per_site.len());
        for (site, ops) in per_site {
            let idx = *inner
                .site_index
                .get(&site)
                .expect("catalog routed an op to an unknown site");
            n_ops += ops.len() as u32;
            let (tx, rx) = transport::oneshot::channel();
            if inner.shard_txs[idx]
                .send(ShardCmd::ApplyConfluent {
                    origin,
                    txn: txn_id,
                    ops,
                    check,
                    reply: tx,
                })
                .is_err()
            {
                return Err(TxnError::ShuttingDown);
            }
            pending.push(rx);
        }
        let mut reads = BTreeMap::new();
        let mut refused = false;
        for rx in pending {
            // Bounded: a shard mid-outage must not hang the bypass. The
            // timeout is NOT a refusal — the command may still apply when
            // the shard recovers, so falling back to the coordinated path
            // here could double-apply. The whole transaction fails
            // instead.
            match rx.recv_timeout(inner.config.diagnostic_timeout) {
                Ok(Some(values)) => {
                    for (item, value) in values {
                        reads.insert(item.logical, value);
                    }
                }
                Ok(None) => refused = true,
                Err(transport::oneshot::RecvError::Disconnected) => {
                    return Err(TxnError::ShuttingDown)
                }
                Err(transport::oneshot::RecvError::Timeout) => {
                    inner
                        .stats
                        .shard_unavailable
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(TxnError::ShardUnavailable);
                }
            }
        }
        if refused {
            inner.stats.fastpath_refused.fetch_add(1, Ordering::Relaxed);
            // Nothing is recorded for the refused incarnation: it never
            // entered any log and its id is simply abandoned.
            return Ok(None);
        }
        let t_applied = plane.now();
        inner.stats.committed.fetch_add(1, Ordering::Relaxed);
        inner.stats.fastpath_applied.fetch_add(1, Ordering::Relaxed);
        plane.record_at(lane, t_begin, txn_id.0, Phase::Begin, 0);
        plane.record_at(lane, t_applied, txn_id.0, Phase::FastPathApplied, n_ops);
        plane.record_at(lane, t_applied, txn_id.0, Phase::Committed, 0);
        Ok(Some(TxnReceipt {
            id: txn_id,
            method: CcMethod::TwoPhaseLocking,
            restarts: 0,
            reads,
            fastpath: true,
            snapshot: false,
        }))
    }

    /// Attempt to serve `spec` from the MVCC snapshot plane. `Ok(None)`
    /// means "run another path": the shape is not pure read-only, the
    /// spec pins a method, or some shard could not serve the watermark
    /// (its chain was pruned past it — counted as a refusal). On success
    /// the reads are final: every shard answered from the version chains
    /// at one watermark load, each served read already entered that
    /// shard's execution log stamped with the version it observed, and
    /// the caller only has to account the commit.
    ///
    /// Consistency rests on the commit clock's draw/retire protocol: a
    /// write's stamp is retired only after its installs are enqueued at
    /// every owning shard, so by the time a watermark load observes the
    /// stamp, per-shard FIFO order puts every install ahead of any
    /// snapshot command sent afterwards. One watermark therefore cuts the
    /// history at a transaction-consistent prefix across all shards.
    fn snapshot_read_values(&self, spec: &TxnSpec) -> Result<SnapshotAnswer, TxnError> {
        let inner = &self.inner;
        if spec.method.is_some() {
            return Ok(None);
        }
        let mut profile = OpProfile::empty();
        if !spec.reads.is_empty() {
            profile = profile.with(OpProfile::READS);
        }
        if !spec.adds.is_empty() {
            profile = profile.with(OpProfile::ADDS);
        }
        if !spec.puts.is_empty() {
            profile = profile.with(OpProfile::PUTS);
        }
        if !spec.writes.is_empty() {
            profile = profile.with(OpProfile::RMW_WRITES);
        }
        let writes = spec.adds.len() + spec.puts.len() + spec.writes.len();
        // Pure classification, identical to the snapshot verdict the
        // routed selection cache memoizes for this shape — the snapshot
        // gate never takes the selector mutex.
        if !is_read_only(profile, spec.reads.len(), writes) {
            return Ok(None);
        }
        let plane = &inner.trace;
        let lane = plane.client_lane();
        let t_begin = plane.now();
        let txn_id = TxnId(inner.next_txn_id.fetch_add(1, Ordering::Relaxed) + 1);
        let origin = spec
            .origin
            .unwrap_or_else(|| inner.catalog.origin_for(txn_id));
        // The single watermark load that defines the snapshot: every
        // shard serves at this timestamp.
        let ts = inner.clock.watermark();
        let mut per_site: BTreeMap<SiteId, Vec<dbmodel::PhysicalItemId>> = BTreeMap::new();
        for &item in &spec.reads {
            let copy = inner
                .catalog
                .read_copy(item, origin)
                .map_err(TxnError::UnknownItem)?;
            per_site.entry(copy.site).or_default().push(copy);
        }
        let mut n_items = 0u32;
        let mut pending = Vec::with_capacity(per_site.len());
        for (site, items) in per_site {
            let idx = *inner
                .site_index
                .get(&site)
                .expect("catalog routed a read to an unknown site");
            n_items += items.len() as u32;
            let (tx, rx) = transport::oneshot::channel();
            if inner.shard_txs[idx]
                .send(ShardCmd::SnapshotRead {
                    txn: txn_id,
                    ts,
                    items,
                    reply: tx,
                })
                .is_err()
            {
                return Err(TxnError::ShuttingDown);
            }
            pending.push(rx);
        }
        let mut reads = BTreeMap::new();
        let mut refused = false;
        for rx in pending {
            // Bounded: a shard mid-outage must not hang the read. The
            // timeout is surfaced as `ShardUnavailable` rather than a
            // silent fallback — a fallback would be correct (reads apply
            // nothing), but the caller asked for data a shard could not
            // produce within its deadline, and the chaos harness asserts
            // exactly this bounded failure instead of a torn answer.
            match rx.recv_timeout(inner.config.diagnostic_timeout) {
                Ok(Some(values)) => {
                    for (item, value) in values {
                        reads.insert(item.logical, value);
                    }
                }
                Ok(None) => refused = true,
                Err(transport::oneshot::RecvError::Disconnected) => {
                    return Err(TxnError::ShuttingDown)
                }
                Err(transport::oneshot::RecvError::Timeout) => {
                    inner
                        .stats
                        .shard_unavailable
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(TxnError::ShardUnavailable);
                }
            }
        }
        if refused {
            // A shard already serving the watermark logged its reads —
            // harmless (they observed committed state); the abandoned id
            // simply never commits. The fallback runs under a fresh id.
            inner.stats.snapshot_refused.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        inner.stats.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        let t_served = plane.now();
        plane.record_at(lane, t_begin, txn_id.0, Phase::Begin, 0);
        plane.record_at(lane, t_served, txn_id.0, Phase::SnapshotRead, n_items);
        Ok(Some((txn_id, reads)))
    }

    /// Stop accepting work, drain the shards and collapse the runtime into
    /// its final report. Returns `None` on every call but the first.
    pub fn shutdown(&self) -> Option<RuntimeReport> {
        let (shards, stop_tx, detector_join) = self
            .inner
            .teardown
            .lock()
            .expect("teardown poisoned")
            .take()?;
        self.inner.stopped.store(true, Ordering::Relaxed);
        // Flush anything still parked in the fault plane so the final
        // drain sees every surviving message.
        self.quiesce_faults();
        // Stop the detector first so it cannot block on a draining shard.
        let _ = stop_tx.send(());
        let _ = detector_join.join();
        let mut logs = LogSet::new();
        for handle in &shards {
            let _ = handle.tx.send(ShardCmd::Shutdown);
        }
        for handle in shards {
            if let Ok((_site, slice)) = handle.join.join() {
                merge_logs(&mut logs, &slice);
            }
        }
        let metrics = self.inner.metrics.merged(self.now());
        let trace_report =
            (self.inner.trace.level() != TraceLevel::Off).then(|| self.trace_report());
        let mut selection_counts = BTreeMap::new();
        for method in [
            CcMethod::TwoPhaseLocking,
            CcMethod::TimestampOrdering,
            CcMethod::PrecedenceAgreement,
        ] {
            let n =
                self.inner.selection_counts[method_code(method) as usize].load(Ordering::Relaxed);
            if n > 0 {
                selection_counts.insert(method, n);
            }
        }
        Some(RuntimeReport {
            logs,
            stats: self.stats(),
            metrics,
            selection_counts,
            trace: trace_report,
        })
    }

    // ------------------------------------------------------------------

    /// Wall-clock time since the database opened, as a simulation-style
    /// timestamp (µs).
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.inner.started.elapsed().as_micros() as u64)
    }

    fn pick_method(&self, spec: &TxnSpec) -> CcMethod {
        let inner = &self.inner;
        let choice = match inner.config.policy {
            CcPolicy::Static(m) => m,
            CcPolicy::Mix { p_2pl, p_to } => {
                let x = inner.mix_rng.lock().expect("rng poisoned").next_f64();
                if x < p_2pl {
                    CcMethod::TwoPhaseLocking
                } else if x < p_2pl + p_to {
                    CcMethod::TimestampOrdering
                } else {
                    CcMethod::PrecedenceAgreement
                }
            }
            CcPolicy::DynamicStl => {
                let probe = Transaction::builder(TxnId(u64::MAX), SiteId(0))
                    .reads(spec.reads.iter().copied())
                    .writes(spec.write_items())
                    .build();
                // The per-shard feedback loop: grant / conflict counters
                // maintained by the shard threads drive the cached
                // selector's epoch logic (a conflict-ratio shift beyond the
                // drift threshold re-fits the model early).
                let signal = WorkloadSignal {
                    grants: inner.stats.grants.load(Ordering::Relaxed),
                    conflicts: inner.stats.prescheduled_grants(),
                };
                let commits = inner.stats.committed.load(Ordering::Relaxed);
                let now = self.now();
                let mut selector = inner.selector.lock().expect("selector poisoned");
                // Timed with the selector mutex already held, so the
                // metric reports selector work (including any lazy stripe
                // merge at a refit boundary), not lock queueing.
                let begun = Instant::now();
                let method = selector
                    .select(&probe, &inner.catalog, signal, commits, || {
                        inner.metrics.merged(now)
                    })
                    .method;
                let spent = begun.elapsed();
                let cache_stats = match &*selector {
                    SelectorEngine::Cached(c) => Some(c.cache_stats()),
                    SelectorEngine::Fresh(_) => None,
                };
                drop(selector);
                if let Some(cs) = cache_stats {
                    inner.stats.publish_cache_stats(cs);
                }
                inner.stats.selections.fetch_add(1, Ordering::Relaxed);
                inner
                    .stats
                    .selection_nanos
                    .fetch_add(spent.as_nanos() as u64, Ordering::Relaxed);
                method
            }
        };
        self.inner.selection_counts[method_code(choice) as usize].fetch_add(1, Ordering::Relaxed);
        choice
    }

    /// Block on the reply mailbox until the incarnation starts executing or
    /// must restart.
    fn wait_for_execution(
        &self,
        ri: &mut RequestIssuer,
        events: &mut ClientMailbox,
        origin: SiteId,
        method: CcMethod,
        lane: usize,
    ) -> Result<WaitOutcome, TxnError> {
        let txn = ri.txn_id().0;
        // One request outcome is recorded per item per incarnation (the
        // reply to the initial `Access`), matching the simulator's
        // accounting; later replies for the same item (backoff re-grants,
        // normal-grant upgrades) would otherwise skew the denial
        // probabilities the STL selector consumes.
        let mut outcome_seen: std::collections::HashSet<dbmodel::PhysicalItemId> =
            std::collections::HashSet::new();
        // The bounded wait: replies may keep trickling in (partial
        // grants) without execution ever starting — a dropped Access or a
        // crashed shard strands the incarnation — so the deadline is
        // checked on every pass, not only on empty polls.
        let deadline = Instant::now() + self.inner.config.request_timeout;
        let poll = SHUTDOWN_POLL.min(self.inner.config.request_timeout);
        loop {
            if Instant::now() >= deadline {
                return Ok(WaitOutcome::TimedOut);
            }
            let event = match events.recv_timeout(ri.txn_id(), poll) {
                Ok(ev) => ev,
                Err(ClientRecvError::Timeout) => {
                    if self.inner.stopped.load(Ordering::Relaxed) {
                        self.inner.registry.deregister(ri.txn_id());
                        return Err(TxnError::ShuttingDown);
                    }
                    continue;
                }
                Err(ClientRecvError::Disconnected) => {
                    self.inner.registry.deregister(ri.txn_id());
                    return Err(TxnError::ShuttingDown);
                }
            };
            // One event may carry several replies (a shard's batched
            // grants); their follow-up sends are routed in one batched
            // call after the whole event is absorbed.
            let mut outcome = None;
            let mut sends: Vec<RequestMsg> = Vec::new();
            let mut absorb = |out: RiOutput| {
                for action in &out.actions {
                    match action {
                        RiAction::StartExecution => outcome = Some(WaitOutcome::Executing),
                        RiAction::Restart { rejected } => {
                            outcome = Some(WaitOutcome::Restart {
                                rejected: *rejected,
                            })
                        }
                        RiAction::BackoffRound => {
                            self.inner
                                .stats
                                .backoff_rounds
                                .fetch_add(1, Ordering::Relaxed);
                            self.inner
                                .metrics
                                .with_local(|m| m.record_backoff_round(method));
                            self.inner.trace.record(lane, txn, Phase::BackoffRound, 0);
                        }
                        RiAction::Committed | RiAction::FullyReleased => {
                            unreachable!("cannot commit before executing")
                        }
                    }
                }
                sends.extend(out.sends);
            };
            match event {
                ClientEvent::Replies(replies) => {
                    for reply in replies.iter() {
                        let first_for_item = outcome_seen.insert(reply.item());
                        self.observe_reply(ri, method, reply, first_for_item);
                        absorb(ri.on_reply(reply));
                    }
                }
                ClientEvent::DeadlockVictim => absorb(ri.abort_for_deadlock()),
            }
            self.route_all(origin, sends)?;
            if let Some(outcome) = outcome {
                return Ok(outcome);
            }
        }
    }

    /// Per-reply metric accounting (feeds the STL estimators).
    /// `first_for_item` is true for the first reply this incarnation
    /// received for the item — only that one counts as a request outcome.
    fn observe_reply(
        &self,
        ri: &RequestIssuer,
        method: CcMethod,
        reply: &ReplyMsg,
        first_for_item: bool,
    ) {
        // A backoff proposal lifts the global timestamp clock (Lamport
        // style): the proposing queue's thresholds sit at `new_ts`, and
        // without adoption a T/O transaction retrying against that item
        // would crawl towards it one tick per incarnation and exhaust its
        // restart budget.
        if let ReplyMsg::Backoff { new_ts, .. } = reply {
            self.inner.ts_counter.fetch_max(new_ts.0, Ordering::Relaxed);
        }
        let mode = ri
            .accessed_items()
            .find(|(item, _)| *item == reply.item())
            .map(|(_, mode)| mode)
            .unwrap_or(AccessMode::Read);
        self.inner.metrics.with_local(|m| {
            if let ReplyMsg::Grant { value, .. } = reply {
                // Counted per issued grant (value-carrying grants
                // correspond to the queue's `GrantIssued` events;
                // normal-grant upgrades carry no value and are not new
                // grants).
                if value.is_some() {
                    m.record_grant(reply.item(), mode);
                }
            }
            if first_for_item {
                let denied = matches!(reply, ReplyMsg::Reject { .. } | ReplyMsg::Backoff { .. });
                m.record_request_outcome(method, mode, denied);
            }
        });
    }

    /// Send every message to the shard owning its item.
    ///
    /// On the batched plane this is the client-side **send batcher**: the
    /// transaction's messages are grouped per destination shard (stable —
    /// relative order per shard is preserved, which is all the protocol
    /// requires) and each group is enqueued as one
    /// [`ShardCmd::HandleBatch`], so a transaction costs each shard one
    /// enqueue and at most one wakeup per phase instead of one per
    /// message. The mpsc plane sends one [`ShardCmd::Handle`] per message,
    /// faithful to the pre-batching baseline.
    fn route_all(&self, origin: SiteId, sends: Vec<RequestMsg>) -> Result<(), TxnError> {
        if sends.is_empty() {
            return Ok(());
        }
        let sends = match &self.inner.faults {
            Some(plane) if plane.is_active() => self.fault_filter(plane, sends)?,
            _ => sends,
        };
        if sends.is_empty() {
            return Ok(());
        }
        let shard_of = |msg: &RequestMsg| -> usize {
            *self
                .inner
                .site_index
                .get(&msg.item().site)
                .expect("catalog routed a message to an unknown site")
        };
        match self.inner.config.transport {
            TransportKind::Mpsc => {
                for msg in sends {
                    let idx = shard_of(&msg);
                    if self.inner.shard_txs[idx]
                        .send(ShardCmd::Handle { origin, msg })
                        .is_err()
                    {
                        return Err(TxnError::ShuttingDown);
                    }
                }
            }
            TransportKind::BatchedRing => {
                // Group by destination without allocating: messages are
                // `Copy` plain data and transactions send at most a
                // handful, so a taken-bitmap scan collects each shard's
                // batch in order. (Transactions beyond 64 messages fall
                // back to consecutive-run grouping — still correct, just
                // potentially more batches.)
                let n = sends.len();
                if n <= 64 {
                    // Resolve each destination once up front; the
                    // grouping scans below then compare plain indices.
                    let mut dest = [0usize; 64];
                    for (d, msg) in dest.iter_mut().zip(&sends) {
                        *d = shard_of(msg);
                    }
                    let mut taken: u64 = 0;
                    for i in 0..n {
                        if taken & (1 << i) != 0 {
                            continue;
                        }
                        let idx = dest[i];
                        let mut msgs = transport::batch::SmallBatch::new();
                        for (j, msg) in sends.iter().enumerate().skip(i) {
                            if taken & (1 << j) == 0 && dest[j] == idx {
                                msgs.push(*msg);
                                taken |= 1 << j;
                            }
                        }
                        if self.inner.shard_txs[idx]
                            .send(ShardCmd::HandleBatch { origin, msgs })
                            .is_err()
                        {
                            return Err(TxnError::ShuttingDown);
                        }
                    }
                } else {
                    let mut run_start = 0;
                    while run_start < n {
                        let idx = shard_of(&sends[run_start]);
                        let mut run_end = run_start + 1;
                        while run_end < n && shard_of(&sends[run_end]) == idx {
                            run_end += 1;
                        }
                        let msgs = sends[run_start..run_end].iter().copied().collect();
                        if self.inner.shard_txs[idx]
                            .send(ShardCmd::HandleBatch { origin, msgs })
                            .is_err()
                        {
                            return Err(TxnError::ShuttingDown);
                        }
                        run_start = run_end;
                    }
                }
            }
        }
        Ok(())
    }

    /// Pass an outbound message list through the armed fault plane. Each
    /// message crosses the plane on the link of its destination shard;
    /// what comes back (possibly nothing — a drop or a hold — possibly
    /// more — duplicates, released delays, healed partitions) replaces it
    /// in the send list, still addressed to the same shard, so the
    /// plane-specific packing below works unchanged. A crossed crash
    /// point enqueues the crash command at the destination *before* the
    /// messages of this call, mirroring a node that goes down as traffic
    /// arrives.
    fn fault_filter(
        &self,
        plane: &faultsim::FaultPlane,
        sends: Vec<RequestMsg>,
    ) -> Result<Vec<RequestMsg>, TxnError> {
        let mut surviving = Vec::with_capacity(sends.len());
        let mut delivered = Vec::new();
        for msg in sends {
            let link = *self
                .inner
                .site_index
                .get(&msg.item().site)
                .expect("catalog routed a message to an unknown site");
            delivered.clear();
            let crash = plane.on_send(link, msg, &mut delivered);
            if let Some(signal) = crash {
                if self.inner.shard_txs[link]
                    .send(ShardCmd::Crash {
                        outage: signal.outage,
                    })
                    .is_err()
                {
                    return Err(TxnError::ShuttingDown);
                }
            }
            surviving.append(&mut delivered);
        }
        Ok(surviving)
    }

    /// Exponential backoff with a deterministic per-transaction jitter.
    /// Basic T/O livelocks under sustained write contention unless retries
    /// are spread out (the losing transaction must reach every queue before
    /// a younger competitor does); doubling the pause up to ~128× the base
    /// creates the quiet windows it needs, and the jitter keeps two
    /// symmetric victims from re-colliding forever.
    fn restart_pause(&self, txn: TxnId, attempt: u32) {
        let base = self.inner.config.restart_backoff;
        if base.is_zero() {
            std::thread::yield_now();
            return;
        }
        let scaled = base.saturating_mul(1u32 << attempt.min(7));
        let jitter_us =
            (txn.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) % scaled.as_micros().max(1) as u64;
        std::thread::sleep(scaled + Duration::from_micros(jitter_us));
    }
}

/// The CC method code carried in a `SelectionDone` event's arg (low
/// byte; [`SELECTION_CACHE_HIT`] is OR-ed in above it).
fn method_code(method: CcMethod) -> u32 {
    match method {
        CcMethod::TwoPhaseLocking => 0,
        CcMethod::TimestampOrdering => 1,
        CcMethod::PrecedenceAgreement => 2,
    }
}

fn merge_logs(into: &mut LogSet, from: &LogSet) {
    for (item, log) in from.iter() {
        for entry in log.entries() {
            into.record_full(item, entry.txn, entry.mode, entry.commit_ts, entry.snapshot);
        }
    }
}

enum WaitOutcome {
    Executing,
    Restart {
        rejected: bool,
    },
    /// `request_timeout` expired before every access was granted: a
    /// shard is down, a message was dropped, or the grant is parked
    /// behind a partition. The incarnation is aborted and retried.
    TimedOut,
}

/// A transaction in its execution phase: every request granted, read values
/// available, writes stageable. Created by [`Database::begin`]; ends with
/// [`ActiveTxn::commit`] or [`ActiveTxn::abort`] (dropping it aborts).
pub struct ActiveTxn {
    db: Database,
    ri: RequestIssuer,
    /// The reply endpoint of a coordinated transaction; `None` for a
    /// snapshot transaction, which never receives a reply.
    events: Option<ClientMailbox>,
    reads: BTreeMap<LogicalItemId, Value>,
    staged: BTreeMap<LogicalItemId, Value>,
    begun: Instant,
    restarts: u32,
    finished: bool,
    /// True when the reads were served from the MVCC snapshot plane at
    /// the global read watermark: nothing is held anywhere, commit is a
    /// local accounting step and abort has nothing to send.
    snapshot: bool,
    /// The client's trace lane, fixed at begin.
    lane: usize,
    /// Boundary timestamps collected so far (begin → exec-start); commit
    /// fills the rest and folds them into the Section-5 accumulator.
    timings: SpanTimings,
}

impl ActiveTxn {
    fn new(
        db: Database,
        ri: RequestIssuer,
        events: ClientMailbox,
        begun: Instant,
        restarts: u32,
        lane: usize,
        timings: SpanTimings,
    ) -> Self {
        let reads = ri
            .read_results()
            .iter()
            .map(|(item, &value)| (item.logical, value))
            .collect();
        ActiveTxn {
            db,
            ri,
            events: Some(events),
            reads,
            staged: BTreeMap::new(),
            begun,
            restarts,
            finished: false,
            snapshot: false,
            lane,
            timings,
        }
    }

    fn new_snapshot(
        db: Database,
        ri: RequestIssuer,
        reads: BTreeMap<LogicalItemId, Value>,
        lane: usize,
    ) -> Self {
        ActiveTxn {
            db,
            ri,
            events: None,
            reads,
            staged: BTreeMap::new(),
            begun: Instant::now(),
            restarts: 0,
            finished: false,
            snapshot: true,
            lane,
            timings: SpanTimings::default(),
        }
    }

    /// True when this transaction's reads came from the MVCC snapshot
    /// plane (see [`Database::begin`]).
    pub fn is_snapshot(&self) -> bool {
        self.snapshot
    }

    /// The id of this incarnation.
    pub fn id(&self) -> TxnId {
        self.ri.txn_id()
    }

    /// The concurrency-control method this incarnation runs under.
    pub fn method(&self) -> CcMethod {
        self.ri.txn().method
    }

    /// The value read for a logical item, if it is in the read set.
    pub fn read(&self, item: LogicalItemId) -> Option<Value> {
        self.reads.get(&item).copied()
    }

    /// All values read, keyed by logical item.
    pub fn reads(&self) -> &BTreeMap<LogicalItemId, Value> {
        &self.reads
    }

    /// Stage the value this transaction writes to `item` at commit.
    pub fn write(&mut self, item: LogicalItemId, value: Value) -> Result<(), TxnError> {
        if self.ri.txn().mode_for(item) != Some(AccessMode::Write) {
            return Err(TxnError::NotInWriteSet(item));
        }
        self.staged.insert(item, value);
        Ok(())
    }

    /// Commit: install the staged writes, release every lock, return the
    /// receipt. Blocks until the release conversation completes (for T/O
    /// transactions that executed on pre-scheduled locks this waits for the
    /// trailing normal grants, per the semi-lock protocol).
    pub fn commit(mut self) -> Result<TxnReceipt, TxnError> {
        if self.snapshot {
            // Nothing is held anywhere: the reads were served and logged
            // at begin, so committing is pure local accounting.
            self.finished = true;
            self.db
                .inner
                .stats
                .committed
                .fetch_add(1, Ordering::Relaxed);
            self.db
                .inner
                .trace
                .record(self.lane, self.ri.txn_id().0, Phase::Committed, 0);
            return Ok(TxnReceipt {
                id: self.ri.txn_id(),
                method: self.ri.txn().method,
                restarts: 0,
                reads: std::mem::take(&mut self.reads),
                fastpath: false,
                snapshot: true,
            });
        }
        let origin = self.ri.txn().origin;
        let method = self.ri.txn().method;
        let plane = Arc::clone(&self.db.inner.trace);
        let t_commit_start = plane.now();
        plane.record_at(
            self.lane,
            t_commit_start,
            self.ri.txn_id().0,
            Phase::CommitStart,
            0,
        );
        for (&item, &value) in &self.staged {
            self.ri.set_write_value(item, value);
        }
        // A writing commit draws its global stamp before any release or
        // demote is built: every install this transaction performs
        // carries `cts`, and the stamp stays in flight — holding the read
        // watermark below it — until the installs are enqueued at every
        // owning shard.
        let cts = if self.ri.txn().write_set().is_empty() {
            None
        } else {
            let cts = self.db.inner.clock.draw();
            self.ri.set_commit_ts(cts);
            Some(cts)
        };
        let out = self.ri.on_execution_done();
        let mut released = out.actions.contains(&RiAction::FullyReleased);
        self.db.route_all(origin, out.sends)?;
        // Bounded commit wait: T/O transactions that executed on
        // pre-scheduled locks wait here for trailing normal grants, and a
        // dead or partitioned shard would otherwise hold the client
        // forever. At this point every write is already implemented (the
        // releases/demotes travel the reliable channel), so expiry is
        // "decided but unacknowledged" — surfaced as `ShardUnavailable`,
        // never a partial commit.
        let deadline = Instant::now() + self.db.inner.config.commit_timeout;
        let poll = SHUTDOWN_POLL.min(self.db.inner.config.commit_timeout);
        while !released {
            if Instant::now() >= deadline {
                self.finished = true;
                self.db.inner.registry.deregister(self.ri.txn_id());
                self.db
                    .inner
                    .stats
                    .shard_unavailable
                    .fetch_add(1, Ordering::Relaxed);
                self.db
                    .inner
                    .trace
                    .record(self.lane, self.ri.txn_id().0, Phase::Aborted, 1);
                // Deliberately NOT retiring `cts`: the commit is decided
                // but unacknowledged, so the read watermark stalls below
                // it — snapshot reads keep serving the last provably
                // consistent prefix instead of racing an unconfirmed
                // install (see [`crate::clock::CommitClock`]).
                return Err(TxnError::ShardUnavailable);
            }
            let events = self
                .events
                .as_mut()
                .expect("coordinated transaction has a reply mailbox");
            let event = match events.recv_timeout(self.ri.txn_id(), poll) {
                Ok(ev) => ev,
                Err(ClientRecvError::Timeout) => {
                    if self.db.inner.stopped.load(Ordering::Relaxed) {
                        break;
                    }
                    continue;
                }
                Err(ClientRecvError::Disconnected) => break,
            };
            let replies = match event {
                ClientEvent::Replies(replies) => replies,
                // Executing or releasing transactions cannot be victims.
                ClientEvent::DeadlockVictim => continue,
            };
            let mut sends: Vec<RequestMsg> = Vec::new();
            for reply in replies.iter() {
                let out: RiOutput = self.ri.on_reply(reply);
                released = released || out.actions.contains(&RiAction::FullyReleased);
                sends.extend(out.sends);
            }
            self.db.route_all(origin, sends)?;
        }
        // Every release/demote is now enqueued at its owning shard (the
        // loop above routed the last of them), so retiring the stamp is
        // safe: a watermark load that observes it happens-after these
        // enqueues, and per-shard FIFO order puts the installs ahead of
        // any snapshot command sent from then on.
        if let Some(cts) = cts {
            self.db.inner.clock.retire(cts);
        }
        self.finished = true;
        self.db.inner.registry.deregister(self.ri.txn_id());
        self.db
            .inner
            .stats
            .committed
            .fetch_add(1, Ordering::Relaxed);
        {
            // Recorded into the calling thread's own metric stripe — the
            // commit path takes no lock shared with admission or the
            // epoch re-fit.
            let latency = simkit::time::Duration::from_secs_f64(self.begun.elapsed().as_secs_f64());
            self.db.inner.metrics.with_local(|m| {
                m.record_commit(method, latency);
                m.record_lock_hold(method, latency, false);
            });
        }
        let t_committed = plane.now();
        plane.record_at(
            self.lane,
            t_committed,
            self.ri.txn_id().0,
            Phase::Committed,
            0,
        );
        let mut timings = self.timings;
        timings.commit_start = t_commit_start;
        timings.committed = t_committed;
        plane.record_span(method, &timings);
        Ok(TxnReceipt {
            id: self.ri.txn_id(),
            method,
            restarts: self.restarts,
            reads: std::mem::take(&mut self.reads),
            fastpath: false,
            snapshot: false,
        })
    }

    /// Abort: drop every lock and queue entry without implementing
    /// anything.
    pub fn abort(mut self) {
        self.abort_inner();
    }

    fn abort_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.snapshot {
            // Nothing was ever held or queued anywhere; the logged reads
            // observed committed state and are harmless to leave behind.
            self.db
                .inner
                .stats
                .user_aborts
                .fetch_add(1, Ordering::Relaxed);
            self.db
                .inner
                .trace
                .record(self.lane, self.ri.txn_id().0, Phase::Aborted, 0);
            return;
        }
        let origin = self.ri.txn().origin;
        let sends: Vec<RequestMsg> = self
            .ri
            .accessed_items()
            .map(|(item, _)| RequestMsg::Abort {
                txn: self.ri.txn_id(),
                item,
            })
            .collect();
        let _ = self.db.route_all(origin, sends);
        self.db.inner.registry.deregister(self.ri.txn_id());
        self.db
            .inner
            .stats
            .user_aborts
            .fetch_add(1, Ordering::Relaxed);
        self.db
            .inner
            .trace
            .record(self.lane, self.ri.txn_id().0, Phase::Aborted, 0);
    }
}

impl Drop for ActiveTxn {
    fn drop(&mut self) {
        self.abort_inner();
    }
}

impl std::fmt::Debug for ActiveTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTxn")
            .field("id", &self.ri.txn_id())
            .field("method", &self.ri.txn().method)
            .field("phase", &self.ri.phase())
            .finish()
    }
}

// The whole point of the runtime: the facade must be shareable across
// client threads.
const _: () = {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assertions() {
        assert_send_sync::<Database>();
    }
    let _ = assertions;
};

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::ReplicationPolicy;

    fn li(i: u64) -> LogicalItemId {
        LogicalItemId(i)
    }

    fn config(shards: u32, items: u64) -> RuntimeConfig {
        RuntimeConfig {
            num_shards: shards,
            num_items: items,
            deadlock_scan_interval: Duration::from_millis(2),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn single_txn_reads_initial_value_and_installs_write() {
        let db = Database::open(config(2, 8)).unwrap();
        let spec = TxnSpec::new().read(li(0)).write(li(1));
        let receipt = db
            .run_transaction(&spec, |reads| {
                assert_eq!(reads[&li(0)], 0);
                vec![(li(1), 41)]
            })
            .unwrap();
        assert_eq!(receipt.restarts, 0);
        // A second transaction observes the installed value.
        let spec = TxnSpec::new().read(li(1));
        let receipt = db.run_transaction(&spec, |_| vec![]).unwrap();
        assert_eq!(receipt.reads[&li(1)], 41);
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 2);
        assert!(report.serializable().is_ok());
        assert!(db.shutdown().is_none(), "second shutdown is a no-op");
    }

    #[test]
    fn write_outside_write_set_is_rejected() {
        let db = Database::open(config(1, 4)).unwrap();
        let mut txn = db.begin(&TxnSpec::new().write(li(0))).unwrap();
        assert_eq!(txn.write(li(1), 9), Err(TxnError::NotInWriteSet(li(1))));
        txn.write(li(0), 7).unwrap();
        txn.commit().unwrap();
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 1);
    }

    #[test]
    fn user_abort_implements_nothing() {
        let db = Database::open(config(1, 4)).unwrap();
        let mut txn = db.begin(&TxnSpec::new().write(li(0))).unwrap();
        txn.write(li(0), 123).unwrap();
        txn.abort();
        // A dropped (not committed) transaction also aborts.
        let _ = db.begin(&TxnSpec::new().write(li(1))).unwrap();
        let spec = TxnSpec::new().read(li(0));
        let receipt = db.run_transaction(&spec, |_| vec![]).unwrap();
        assert_eq!(receipt.reads[&li(0)], 0, "aborted write must not land");
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.user_aborts, 2);
        assert_eq!(report.stats.committed, 1);
        assert!(report.serializable().is_ok());
    }

    #[test]
    fn unknown_item_is_reported() {
        let db = Database::open(config(1, 2)).unwrap();
        let err = db.begin(&TxnSpec::new().read(li(99))).unwrap_err();
        assert!(matches!(err, TxnError::UnknownItem(_)));
        db.shutdown();
    }

    #[test]
    fn to_conflict_restarts_and_still_commits() {
        let db = Database::open(config(1, 1)).unwrap();
        // A hot single item written by T/O transactions from several
        // threads: rejections are expected, every transaction must still
        // commit within the restart budget.
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let spec = TxnSpec::new()
                            .write(li(0))
                            .method(CcMethod::TimestampOrdering);
                        db.run_transaction(&spec, |_| vec![(li(0), 1)]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 100);
        assert!(report.serializable().is_ok());
    }

    #[test]
    fn deadlock_between_2pl_writers_is_broken() {
        let db = Database::open(config(2, 2)).unwrap();
        // Two 2PL transactions locking {0,1} in opposite orders cannot
        // deadlock here because requests are issued up front, but a crowd of
        // multi-item writers still produces genuine wait cycles under 2PL.
        let threads: Vec<_> = (0..6)
            .map(|k| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..20 {
                        let spec = TxnSpec::new()
                            .write(li((k + i) % 2))
                            .write(li((k + i + 1) % 2))
                            .method(CcMethod::TwoPhaseLocking);
                        db.run_transaction(&spec, |_| vec![]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 120);
        assert!(report.serializable().is_ok());
    }

    /// The baseline reply plane (per-incarnation mpsc channels behind the
    /// global map) still serves concurrent traffic — it is the A/B
    /// comparison the exp9 `reply=mpsc` rows measure.
    #[test]
    fn mpsc_reply_plane_still_serves_concurrent_traffic() {
        let db = Database::open(RuntimeConfig {
            reply_plane: crate::config::ReplyPlaneKind::Mpsc,
            ..config(2, 8)
        })
        .unwrap();
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..20 {
                        let spec = TxnSpec::new()
                            .write(li((k + i) % 8))
                            .read(li((k + i + 1) % 8));
                        db.run_transaction(&spec, |_| vec![(li((k + i) % 8), i as Value)])
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 80);
        assert!(report.serializable().is_ok());
    }

    /// Restart churn on the mailbox plane: the same reusable mailbox
    /// serves every incarnation, and the replies still in flight when an
    /// incarnation aborts surface as counted stale events, never as
    /// grants to the wrong incarnation (the run stays serializable).
    #[test]
    fn restart_churn_reuses_mailboxes_and_counts_stale_replies() {
        let db = Database::open(config(1, 1)).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let spec = TxnSpec::new()
                            .write(li(0))
                            .method(CcMethod::TimestampOrdering);
                        db.run_transaction(&spec, |_| vec![(li(0), 1)]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 100);
        // The oracle is the real check here: a reply leaked across a
        // restart boundary would grant the wrong incarnation and produce
        // a non-serializable history. (Stale replies themselves are
        // scheduling-dependent, so their count cannot be asserted
        // strictly positive — the registry race suite covers that
        // deterministically.)
        assert!(report.serializable().is_ok());
    }

    #[test]
    fn mpsc_plane_still_serves_concurrent_traffic() {
        let db = Database::open(RuntimeConfig {
            transport: crate::config::TransportKind::Mpsc,
            ..config(2, 8)
        })
        .unwrap();
        let threads: Vec<_> = (0..4)
            .map(|k| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..20 {
                        let spec = TxnSpec::new()
                            .write(li((k + i) % 8))
                            .read(li((k + i + 1) % 8));
                        db.run_transaction(&spec, |_| vec![(li((k + i) % 8), i as Value)])
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 80);
        assert!(report.serializable().is_ok());
    }

    /// Acceptance check: the epoch re-fit holds no lock the commit path
    /// needs. Client threads commit continuously while the main thread
    /// hammers forced re-fits (each of which merges every metric stripe);
    /// every transaction must commit and the refits must be visible in
    /// the (atomics-only) stats snapshot.
    #[test]
    fn commits_proceed_concurrently_with_forced_refits() {
        let db = Database::open(RuntimeConfig {
            policy: CcPolicy::DynamicStl,
            ..config(2, 16)
        })
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..3)
            .map(|k| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..60u64 {
                        let spec = TxnSpec::new()
                            .read(li((k + i) % 16))
                            .write(li((k + i + 3) % 16));
                        db.run_transaction(&spec, |_| vec![(li((k + i + 3) % 16), i as Value)])
                            .unwrap();
                    }
                })
            })
            .collect();
        let mut forced = 0u64;
        while !workers.iter().all(|w| w.is_finished()) {
            assert!(db.force_refit(), "dynamic cached policy must refit");
            forced += 1;
            // Poll stats mid-refit-storm: reads only atomics, so it can
            // never block on (or be blocked by) admission.
            let _ = db.stats();
        }
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        assert!(forced > 0);
        let stats = db.stats();
        assert!(
            stats.cache.refits >= forced,
            "forced refits must be counted: {} < {forced}",
            stats.cache.refits
        );
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 180);
        assert!(report.serializable().is_ok());
    }

    #[test]
    fn stats_reports_cache_counters_without_selector_lock() {
        let db = Database::open(RuntimeConfig {
            policy: CcPolicy::DynamicStl,
            selection_cache: Some(selection::CacheSettings {
                warmup_commits: 3,
                explore_every: 0,
                ..selection::CacheSettings::default()
            }),
            ..config(1, 8)
        })
        .unwrap();
        for i in 0..50 {
            let spec = TxnSpec::new().read(li(i % 8)).write(li((i + 1) % 8));
            db.run_transaction(&spec, |_| vec![]).unwrap();
        }
        let stats = db.stats();
        assert_eq!(stats.selections, 50);
        assert!(
            stats.cache.hits + stats.cache.misses > 0,
            "cost-based selections must flow into the atomic mirror: {:?}",
            stats.cache
        );
        assert!(stats.cache.epoch >= 1);
        db.shutdown();
    }

    #[test]
    fn mix_policy_spreads_methods_and_log_tap_grows() {
        let db = Database::open(RuntimeConfig {
            num_shards: 2,
            num_items: 16,
            replication: ReplicationPolicy::KCopies(2),
            policy: CcPolicy::Mix {
                p_2pl: 0.34,
                p_to: 0.33,
            },
            ..RuntimeConfig::default()
        })
        .unwrap();
        for i in 0..60 {
            let spec = TxnSpec::new().read(li(i % 16)).write(li((i + 1) % 16));
            db.run_transaction(&spec, |_| vec![(li((i + 1) % 16), i as Value)])
                .unwrap();
        }
        assert!(db.log_snapshot().total_ops() > 0, "live log tap works");
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 60);
        assert!(
            report.selection_counts.len() >= 2,
            "mix uses several methods: {:?}",
            report.selection_counts
        );
        assert!(report.serializable().is_ok());
    }

    /// Files currently in `dir` whose names mention the given reason slug.
    fn postmortems_in(dir: &std::path::Path, slug: &str) -> usize {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().contains(slug))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Satellite regression (PR 7): the mailbox-overflow postmortem fires
    /// on the *registration* that transitions the reply plane onto the
    /// overflow map — before anyone polls stats — and `stats()` itself
    /// never writes anything.
    #[test]
    fn overflow_postmortem_fires_at_registration_not_in_stats() {
        let dir = std::env::temp_dir().join(format!(
            "db_overflow_postmortem_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open(RuntimeConfig {
            num_shards: 2,
            num_items: 128,
            // Pin the resizable index at a 64-bucket ceiling so holding
            // 65+ open transactions forces a collision onto the overflow
            // map (pigeonhole), exercising the degraded path on purpose.
            reply_index_capacity: 64,
            reply_index_max_capacity: 64,
            reply_max_clients: 128,
            trace: trace::TraceConfig {
                postmortem_dir: Some(dir.clone()),
                ..trace::TraceConfig::default()
            },
            ..RuntimeConfig::default()
        })
        .unwrap();
        let mut open = Vec::new();
        for i in 0..80u64 {
            open.push(db.begin(&TxnSpec::new().write(li(i))).unwrap());
        }
        assert!(
            postmortems_in(&dir, "mailbox-overflow") > 0,
            "the overflow transition must dump a postmortem with no stats() call"
        );
        // stats() reports the degraded state but is side-effect-free:
        // repeated polling writes nothing new.
        let before = postmortems_in(&dir, "mailbox-overflow");
        for _ in 0..5 {
            let stats = db.stats();
            assert!(stats.mailbox_overflow_entries > 0);
            assert_eq!(stats.mailbox_index_capacity, 64);
        }
        assert_eq!(postmortems_in(&dir, "mailbox-overflow"), before);
        for txn in open {
            txn.abort();
        }
        db.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The no-overflow half: a healthy reply plane never dumps, no matter
    /// how often stats is polled, and the new index counters surface.
    #[test]
    fn stats_polling_is_side_effect_free_on_a_healthy_plane() {
        let dir = std::env::temp_dir().join(format!(
            "db_healthy_postmortem_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open(RuntimeConfig {
            num_shards: 1,
            num_items: 8,
            trace: trace::TraceConfig {
                postmortem_dir: Some(dir.clone()),
                ..trace::TraceConfig::default()
            },
            ..RuntimeConfig::default()
        })
        .unwrap();
        for i in 0..10 {
            let spec = TxnSpec::new().write(li(i % 8));
            db.run_transaction(&spec, |_| vec![(li(i % 8), 1)]).unwrap();
            let stats = db.stats();
            assert_eq!(stats.mailbox_overflow_entries, 0);
            assert_eq!(stats.mailbox_full_drops, 0);
            assert!(stats.mailbox_index_capacity >= 1024);
        }
        assert_eq!(
            postmortems_in(&dir, "mailbox-overflow"),
            0,
            "a healthy plane polled for stats must never dump"
        );
        db.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sequential fast-path correctness: every increment applies through
    /// the bypass (no grants anywhere), the final value is exact, and the
    /// flight recorder saw the `FastPathApplied` phase.
    #[test]
    fn fast_adds_apply_through_the_bypass() {
        let db = Database::open(config(1, 4)).unwrap();
        const N: u64 = 50;
        for _ in 0..N {
            let receipt = db.execute(&TxnSpec::new().add(li(0), 2)).unwrap();
            assert!(receipt.fastpath);
            assert_eq!(receipt.restarts, 0);
        }
        let receipt = db.execute(&TxnSpec::new().read(li(0))).unwrap();
        assert!(receipt.snapshot, "a pure read takes the snapshot plane");
        assert_eq!(receipt.reads[&li(0)], 2 * N as Value);
        let stats = db.stats();
        assert_eq!(stats.fastpath_applied, N);
        assert_eq!(stats.snapshot_reads, 1);
        assert_eq!(stats.fastpath_refused, 0);
        assert_eq!(stats.committed, N + 1);
        assert_eq!(stats.grants, 0, "the bypass issues no grants");
        assert!(db
            .trace_snapshot()
            .iter()
            .any(|e| e.phase == Phase::FastPathApplied));
        let report = db.shutdown().unwrap();
        assert!(report.serializable().is_ok());
    }

    /// A non-confluent shape (declared rmw write) never takes the bypass,
    /// and puts land last-writer-wins through it.
    #[test]
    fn rmw_shapes_stay_coordinated_and_puts_apply() {
        let db = Database::open(config(1, 4)).unwrap();
        let receipt = db.execute(&TxnSpec::new().put(li(1), 77)).unwrap();
        assert!(receipt.fastpath);
        let receipt = db
            .execute(&TxnSpec::new().read(li(1)).write(li(2)))
            .unwrap();
        assert!(!receipt.fastpath, "an rmw write forces coordination");
        assert_eq!(receipt.reads[&li(1)], 77);
        let stats = db.stats();
        assert_eq!(stats.fastpath_applied, 1);
        let report = db.shutdown().unwrap();
        assert!(report.serializable().is_ok());
    }

    /// The queue manager refuses the bypass while a coordinated writer
    /// holds the item, and the transparent fallback commits the increment
    /// on top of the writer's value.
    #[test]
    fn bypass_refusal_falls_back_to_coordination() {
        let db = Database::open(config(1, 2)).unwrap();
        let mut holder = db.begin(&TxnSpec::new().write(li(0))).unwrap();
        holder.write(li(0), 7).unwrap();
        let worker = {
            let db = db.clone();
            std::thread::spawn(move || db.execute(&TxnSpec::new().add(li(0), 1)).unwrap())
        };
        // The fast attempt is refused (the holder's lock is live), then
        // the fallback queues behind the lock until the holder commits.
        while db.stats().fastpath_refused == 0 {
            std::thread::yield_now();
        }
        holder.commit().unwrap();
        let receipt = worker.join().unwrap();
        assert!(!receipt.fastpath, "the refused txn re-ran coordinated");
        let check = db.execute(&TxnSpec::new().read(li(0))).unwrap();
        assert_eq!(
            check.reads[&li(0)],
            8,
            "the fallback added on top of the committed write"
        );
        assert!(db.stats().fastpath_refused >= 1);
        let report = db.shutdown().unwrap();
        assert!(report.serializable().is_ok());
    }

    /// The mixed-plane certification the tentpole demands: fast-path
    /// increments and coordinated read-modify-writes hammer the same hot
    /// items from concurrent threads, and the serializability oracle
    /// certifies the merged history.
    #[test]
    fn mixed_fastpath_and_coordinated_traffic_stays_serializable() {
        let db = Database::open(config(2, 8)).unwrap();
        let fast: Vec<_> = (0..3u64)
            .map(|k| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..40u64 {
                        db.execute(&TxnSpec::new().add(li((k + i) % 8), 1)).unwrap();
                    }
                })
            })
            .collect();
        let coordinated: Vec<_> = (0..3u64)
            .map(|k| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..40u64 {
                        let item = li((k + i) % 8);
                        let spec = TxnSpec::new().write(item).read(li((k + i + 1) % 8));
                        db.run_transaction(&spec, |reads| {
                            vec![(item, reads[&li((k + i + 1) % 8)].wrapping_add(3))]
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in fast.into_iter().chain(coordinated) {
            t.join().unwrap();
        }
        let stats = db.stats();
        assert_eq!(stats.committed, 240);
        assert_eq!(
            stats.fastpath_applied + stats.fastpath_refused,
            120,
            "every fast txn either applied or was refused exactly once"
        );
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 240);
        assert!(report.serializable().is_ok());
    }

    /// Satellite regression (PR 9): a dead shard must not hang `begin`.
    /// The only shard is taken down for far longer than the whole retry
    /// budget; the client's bounded request wait aborts each incarnation
    /// at `request_timeout`, exhausts `max_restarts`, and surfaces a
    /// clean `ShardUnavailable` well before the outage ends.
    #[test]
    fn dead_shard_request_wait_is_bounded() {
        let db = Database::open(RuntimeConfig {
            request_timeout: Duration::from_millis(40),
            max_restarts: 1,
            ..config(1, 4)
        })
        .unwrap();
        db.inner.shard_txs[0]
            .send(ShardCmd::Crash {
                outage: Duration::from_millis(400),
            })
            .map_err(|_| ())
            .unwrap();
        let begun = Instant::now();
        let err = db.begin(&TxnSpec::new().write(li(0))).unwrap_err();
        assert_eq!(err, TxnError::ShardUnavailable);
        assert!(
            begun.elapsed() < Duration::from_millis(350),
            "the bounded wait must give up before the outage ends, took {:?}",
            begun.elapsed()
        );
        let stats = db.stats();
        assert!(stats.timeout_restarts >= 1, "each expiry is counted");
        assert_eq!(stats.shard_unavailable, 1);
        assert_eq!(stats.committed, 0, "nothing was implemented");
        db.shutdown();
    }

    /// Satellite regression (PR 9): the diagnostic taps
    /// (`waiting_transactions`, `log_snapshot`) skip an unresponsive
    /// shard within `diagnostic_timeout` instead of blocking forever.
    #[test]
    fn diagnostics_skip_an_unresponsive_shard() {
        let db = Database::open(RuntimeConfig {
            diagnostic_timeout: Duration::from_millis(30),
            ..config(2, 8)
        })
        .unwrap();
        for i in 0..8 {
            db.run_transaction(&TxnSpec::new().write(li(i)), |_| vec![(li(i), 1)])
                .unwrap();
        }
        db.inner.shard_txs[0]
            .send(ShardCmd::Crash {
                outage: Duration::from_millis(300),
            })
            .map_err(|_| ())
            .unwrap();
        let begun = Instant::now();
        let waiting = db.waiting_transactions();
        let snapshot = db.log_snapshot();
        assert!(
            begun.elapsed() < Duration::from_millis(200),
            "diagnostics must return within the bound, took {:?}",
            begun.elapsed()
        );
        assert!(waiting.is_empty());
        assert!(
            snapshot.total_ops() > 0,
            "the responsive shard's slice is still served"
        );
        db.shutdown();
    }

    /// Satellite regression (PR 9): a commit wait parked on a trailing
    /// normal-grant upgrade gives up at `commit_timeout` with
    /// `ShardUnavailable` — decided but unacknowledged, never a hang. A
    /// T/O reader holds a share lock; a later T/O writer executes on its
    /// pre-scheduled lock and demotes at commit, which implements the
    /// write but cannot fully release until the reader leaves.
    #[test]
    fn commit_wait_on_a_parked_upgrade_is_bounded() {
        let db = Database::open(RuntimeConfig {
            commit_timeout: Duration::from_millis(60),
            ..config(1, 2)
        })
        .unwrap();
        let reader = db
            .begin(
                &TxnSpec::new()
                    .read(li(0))
                    .method(CcMethod::TimestampOrdering),
            )
            .unwrap();
        let mut writer = db
            .begin(
                &TxnSpec::new()
                    .write(li(0))
                    .method(CcMethod::TimestampOrdering),
            )
            .unwrap();
        writer.write(li(0), 9).unwrap();
        let begun = Instant::now();
        let err = writer.commit().unwrap_err();
        assert_eq!(err, TxnError::ShardUnavailable);
        assert!(
            begun.elapsed() < Duration::from_millis(300),
            "commit wait must be bounded, took {:?}",
            begun.elapsed()
        );
        assert_eq!(db.stats().shard_unavailable, 1);
        // The write was implemented when the lock demoted: the decision
        // stands even though the acknowledgement never came. The check
        // read pins a coordinated method: the unacknowledged commit stamp
        // is never retired, so the watermark stalls below it and a
        // snapshot read would (correctly) serve the pre-write version.
        reader.commit().unwrap();
        let check = db
            .run_transaction(
                &TxnSpec::new().read(li(0)).method(CcMethod::TwoPhaseLocking),
                |_| vec![],
            )
            .unwrap();
        assert_eq!(check.reads[&li(0)], 9);
        let report = db.shutdown().unwrap();
        assert!(report.serializable().is_ok());
    }

    /// Satellite 4 (PR 9): a victim storm — the same logical transaction
    /// repeatedly victimised while queued behind a holder — stays
    /// bounded: every restart is counted, the storm cannot exceed the
    /// `max_restarts` budget, and the survivor either commits or fails
    /// with a clean error. The history stays oracle-certified.
    #[test]
    fn victim_storm_is_bounded_and_oracle_certified() {
        let db = Database::open(RuntimeConfig {
            max_restarts: 6,
            ..config(1, 2)
        })
        .unwrap();
        let holder = db
            .begin(
                &TxnSpec::new()
                    .write(li(0))
                    .method(CcMethod::TwoPhaseLocking),
            )
            .unwrap();
        let worker = {
            let db = db.clone();
            std::thread::spawn(move || {
                let spec = TxnSpec::new()
                    .write(li(0))
                    .method(CcMethod::TwoPhaseLocking);
                db.run_transaction(&spec, |_| vec![(li(0), 7)])
            })
        };
        // Storm: blanket-victimise every plausible incarnation id until
        // the worker has been through several deadlock restarts.
        while db.stats().deadlock_restarts < 3 && !worker.is_finished() {
            for i in 1..=64 {
                let _ = db.inner.registry.signal_deadlock(TxnId(i));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        holder.commit().unwrap();
        match worker.join().unwrap() {
            Ok(receipt) => {
                assert!(
                    (3..=6).contains(&receipt.restarts),
                    "storm restarts must be counted and bounded: {}",
                    receipt.restarts
                );
            }
            Err(TxnError::TooManyRestarts { attempts }) => {
                assert_eq!(attempts, 7, "the budget is exact");
            }
            Err(other) => panic!("victim storm must end cleanly, got {other:?}"),
        }
        let stats = db.stats();
        assert!(stats.deadlock_restarts >= 3);
        assert!(stats.deadlock_restarts <= 7);
        let report = db.shutdown().unwrap();
        assert!(report.serializable().is_ok());
    }

    /// The mutation gate: with `confluence_check = false` the bypass
    /// ignores in-flight coordinated work, and a deliberately interleaved
    /// fast transaction closes a precedence cycle the oracle must reject.
    /// (This is the proof that the at-apply refusal check is what keeps
    /// the fast path serializable.)
    #[test]
    fn disabling_the_confluence_check_admits_a_non_serializable_history() {
        let db = Database::open(RuntimeConfig {
            confluence_check: false,
            ..config(2, 2)
        })
        .unwrap();
        // T holds write locks on both items across both shards.
        let mut t = db.begin(&TxnSpec::new().write(li(0)).write(li(1))).unwrap();
        t.write(li(0), 10).unwrap();
        t.write(li(1), 20).unwrap();
        let phys0 = db.catalog().physical_copies(li(0)).unwrap()[0];
        let phys1 = db.catalog().physical_copies(li(1)).unwrap()[0];
        let f = TxnId(1_000_000);
        let send = |ops: Vec<ConfluentOp>| {
            let site = ops[0].item().site;
            let idx = db.inner.site_index[&site];
            let (tx, rx) = transport::oneshot::channel();
            db.inner.shard_txs[idx]
                .send(ShardCmd::ApplyConfluent {
                    origin: SiteId(0),
                    txn: f,
                    ops,
                    check: false,
                    reply: tx,
                })
                .map_err(|_| ())
                .unwrap();
            rx.recv().unwrap()
        };
        // F reads item 0 *before* T implements its write there (F → T)...
        assert!(send(vec![ConfluentOp::Read(phys0)]).is_some());
        t.commit().unwrap();
        // ...and writes item 1 *after* T implemented (T → F): a cycle.
        assert!(send(vec![ConfluentOp::Add(phys1, 1)]).is_some());
        let report = db.shutdown().unwrap();
        assert!(
            report.serializable().is_err(),
            "the unchecked bypass must admit a non-serializable history"
        );
    }

    /// Tentpole routing (PR 10): a pure read rides the snapshot plane —
    /// no grants, no restarts — `begin` hands back a snapshot handle
    /// whose reads are already served, and writes outside the (empty)
    /// write set stay rejected. A pinned method opts out.
    #[test]
    fn snapshot_reads_route_around_coordination() {
        let db = Database::open(config(2, 8)).unwrap();
        db.run_transaction(&TxnSpec::new().write(li(3)), |_| vec![(li(3), 42)])
            .unwrap();
        let grants_before = db.stats().grants;
        let receipt = db.execute(&TxnSpec::new().read(li(3)).read(li(4))).unwrap();
        assert!(receipt.snapshot);
        assert_eq!(receipt.restarts, 0);
        assert_eq!(receipt.reads[&li(3)], 42);
        assert_eq!(receipt.reads[&li(4)], 0);
        let mut txn = db.begin(&TxnSpec::new().read(li(3))).unwrap();
        assert!(txn.is_snapshot());
        assert_eq!(txn.read(li(3)), Some(42));
        assert_eq!(txn.write(li(3), 1), Err(TxnError::NotInWriteSet(li(3))));
        let receipt = txn.commit().unwrap();
        assert!(receipt.snapshot);
        // An aborted snapshot handle counts as a user abort and leaves
        // no residue to clean up.
        db.begin(&TxnSpec::new().read(li(4))).unwrap().abort();
        // Pinning a method forces the coordinated plane.
        let receipt = db
            .execute(
                &TxnSpec::new()
                    .read(li(3))
                    .method(CcMethod::TimestampOrdering),
            )
            .unwrap();
        assert!(!receipt.snapshot);
        let stats = db.stats();
        assert_eq!(stats.snapshot_reads, 3);
        assert_eq!(stats.snapshot_refused, 0);
        assert_eq!(
            stats.grants,
            grants_before + 1,
            "only the pinned-method read took a grant"
        );
        assert_eq!(stats.user_aborts, 1);
        assert_eq!(stats.committed, 4);
        assert_eq!(db.live_transactions(), 0);
        let report = db.shutdown().unwrap();
        assert!(report.serializable().is_ok());
    }

    /// Tentpole certification (PR 10): snapshot readers race coordinated
    /// read-modify-writes and fast-path increments on the same hot items,
    /// and the merged history — snapshot reads ordered by served stamp,
    /// not log position — is oracle-certified.
    #[test]
    fn mixed_snapshot_and_writer_traffic_stays_serializable() {
        let db = Database::open(config(2, 8)).unwrap();
        let writers: Vec<_> = (0..2u64)
            .map(|k| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..40u64 {
                        let item = li((k + i) % 8);
                        db.run_transaction(
                            &TxnSpec::new().write(item).read(li((k + i + 1) % 8)),
                            |reads| vec![(item, reads[&li((k + i + 1) % 8)].wrapping_add(3))],
                        )
                        .unwrap();
                        db.execute(&TxnSpec::new().add(li((k + i + 3) % 8), 1))
                            .unwrap();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u64)
            .map(|k| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..40u64 {
                        let receipt = db
                            .execute(
                                &TxnSpec::new()
                                    .read(li((k + i) % 8))
                                    .read(li((k + i + 4) % 8)),
                            )
                            .unwrap();
                        assert!(receipt.snapshot, "a pure read must never coordinate");
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        let stats = db.stats();
        assert_eq!(stats.committed, 240);
        assert_eq!(stats.snapshot_reads, 80);
        assert_eq!(stats.snapshot_refused, 0);
        let report = db.shutdown().unwrap();
        assert_eq!(report.stats.committed, 240);
        assert!(report.serializable().is_ok());
    }

    /// Chaos regression (PR 10): a snapshot read against a crashed shard
    /// surfaces a bounded `ShardUnavailable` — never a hang, never a
    /// silent fall-through to a torn answer.
    #[test]
    fn snapshot_read_on_a_dead_shard_is_bounded() {
        let db = Database::open(RuntimeConfig {
            diagnostic_timeout: Duration::from_millis(40),
            ..config(1, 4)
        })
        .unwrap();
        db.inner.shard_txs[0]
            .send(ShardCmd::Crash {
                outage: Duration::from_millis(400),
            })
            .map_err(|_| ())
            .unwrap();
        let begun = Instant::now();
        let err = db.execute(&TxnSpec::new().read(li(0))).unwrap_err();
        assert_eq!(err, TxnError::ShardUnavailable);
        assert!(
            begun.elapsed() < Duration::from_millis(350),
            "the snapshot wait must give up before the outage ends, took {:?}",
            begun.elapsed()
        );
        let stats = db.stats();
        assert_eq!(stats.shard_unavailable, 1);
        assert_eq!(stats.committed, 0);
        db.shutdown();
    }

    /// Satellite 3 (PR 10): when the hard cap has pruned the chain past
    /// the (stalled) watermark, the snapshot plane refuses rather than
    /// serving a wrong version, and the transparent fallback still
    /// commits the read coordinated — correct answer, counted refusal.
    #[test]
    fn pruned_chain_refuses_and_falls_back() {
        let db = Database::open(RuntimeConfig {
            commit_timeout: Duration::from_millis(40),
            version_retain: 1,
            ..config(1, 4)
        })
        .unwrap();
        // Stall the watermark at zero: a T/O writer parked behind a
        // share-holding reader draws the first commit stamp and times
        // out, so the stamp is never retired.
        let reader = db
            .begin(
                &TxnSpec::new()
                    .read(li(1))
                    .method(CcMethod::TimestampOrdering),
            )
            .unwrap();
        let mut writer = db
            .begin(
                &TxnSpec::new()
                    .write(li(1))
                    .method(CcMethod::TimestampOrdering),
            )
            .unwrap();
        writer.write(li(1), 9).unwrap();
        assert_eq!(writer.commit().unwrap_err(), TxnError::ShardUnavailable);
        reader.commit().unwrap();
        // Six stamped writes against retain=1 (hard cap 4) prune li(0)'s
        // seed version out of the chain.
        for v in 1..=6 {
            db.run_transaction(&TxnSpec::new().write(li(0)), |_| vec![(li(0), v)])
                .unwrap();
        }
        let receipt = db.execute(&TxnSpec::new().read(li(0))).unwrap();
        assert!(
            !receipt.snapshot,
            "a chain pruned past the watermark must not serve a snapshot"
        );
        assert_eq!(receipt.reads[&li(0)], 6);
        assert!(db.stats().snapshot_refused >= 1);
        let report = db.shutdown().unwrap();
        assert!(report.serializable().is_ok());
    }

    /// The mutation gate (PR 10): with `snapshot_validation = false` the
    /// plane serves raw heads, and a snapshot transaction whose two reads
    /// straddle a writer's commit observes a torn state — the oracle must
    /// reject the cycle. (This is the proof that the watermark visibility
    /// check is what keeps snapshot reads serializable.)
    #[test]
    fn disabling_snapshot_validation_admits_a_non_serializable_history() {
        let db = Database::open(RuntimeConfig {
            snapshot_validation: false,
            ..config(1, 2)
        })
        .unwrap();
        let mut t = db.begin(&TxnSpec::new().write(li(0)).write(li(1))).unwrap();
        t.write(li(0), 10).unwrap();
        t.write(li(1), 20).unwrap();
        let phys0 = db.catalog().physical_copies(li(0)).unwrap()[0];
        let phys1 = db.catalog().physical_copies(li(1)).unwrap()[0];
        let f = TxnId(1_000_000);
        let send = |items: Vec<dbmodel::PhysicalItemId>| {
            let (tx, rx) = transport::oneshot::channel();
            db.inner.shard_txs[0]
                .send(ShardCmd::SnapshotRead {
                    txn: f,
                    ts: Timestamp::ZERO,
                    items,
                    reply: tx,
                })
                .map_err(|_| ())
                .unwrap();
            rx.recv().unwrap()
        };
        // F reads item 0 *before* T installs (seed version: F → T)...
        assert_eq!(send(vec![phys0]), Some(vec![(phys0, 0)]));
        t.commit().unwrap();
        // ...and item 1 *after*: the unvalidated head is T's stamped
        // write, far above F's snapshot timestamp (T → F): a cycle.
        assert_eq!(send(vec![phys1]), Some(vec![(phys1, 20)]));
        let report = db.shutdown().unwrap();
        assert!(
            report.serializable().is_err(),
            "the unvalidated snapshot plane must admit a torn read"
        );
    }
}
