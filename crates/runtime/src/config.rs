//! Configuration of the sharded execution runtime.

use std::time::Duration;

use dbmodel::{CcMethod, ReplicationPolicy, Value};
use selection::CacheSettings;
use unified_cc::EnforcementMode;

/// How the runtime assigns a concurrency-control method to a transaction
/// that does not pin one explicitly (see [`crate::TxnSpec::method`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcPolicy {
    /// Every transaction runs under the same method.
    Static(CcMethod),
    /// Probabilistic mix: a transaction runs 2PL with probability `p_2pl`,
    /// T/O with probability `p_to`, PA otherwise.
    Mix {
        /// Probability of assigning 2PL.
        p_2pl: f64,
        /// Probability of assigning T/O.
        p_to: f64,
    },
    /// Pick the method with the smallest estimated system-throughput loss
    /// using the live metrics (paper, Section 5).
    DynamicStl,
}

/// Which message plane carries protocol messages from client threads to
/// the shard threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The batched lock-free plane (default): per-transaction sends are
    /// grouped per destination shard and enqueued on a bounded MPSC ring
    /// (`transport::ring`); each shard wakeup drains the whole ring.
    #[default]
    BatchedRing,
    /// The pre-batching baseline: one `std::sync::mpsc` sync-channel send
    /// per protocol message, one recv per shard wakeup. Kept for
    /// overhead comparisons (the `exp9` `*-mpsc` rows).
    Mpsc,
}

/// Which reply plane routes shard replies and deadlock-victim signals
/// back to the waiting client threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplyPlaneKind {
    /// The lock-free slab plane (default): each client thread drives its
    /// transaction through a reusable bounded mailbox acquired from a
    /// shared slab; delivery resolves `TxnId → mailbox` through a packed
    /// atomic index and the transaction id doubles as the incarnation
    /// tag that drops stale replies. No lock and no allocation on the
    /// reply path.
    #[default]
    Mailbox,
    /// The pre-slab baseline: a global `Mutex<HashMap>` of
    /// per-incarnation `std::sync::mpsc` channels, one allocated per
    /// incarnation. Kept for overhead comparisons (the `exp9`
    /// `reply=mpsc` rows).
    Mpsc,
}

/// Errors reported by [`RuntimeConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_shards` must be at least 1.
    NoShards,
    /// `num_items` must be at least 1.
    NoItems,
    /// Mix probabilities must be in `[0, 1]` and sum to at most 1.
    BadMix,
    /// The selection-cache settings are internally inconsistent.
    BadSelectionCache(String),
    /// The tracing-plane settings are internally inconsistent.
    BadTrace(String),
    /// The reply-plane sizing is internally inconsistent.
    BadReplyPlane(String),
    /// A wait bound is zero (the runtime would spin).
    BadTimeout(String),
    /// The fault schedule does not match the runtime shape.
    BadFaults(String),
    /// The snapshot-plane settings are internally inconsistent.
    BadSnapshot(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoShards => write!(f, "num_shards must be at least 1"),
            ConfigError::NoItems => write!(f, "num_items must be at least 1"),
            ConfigError::BadMix => {
                write!(f, "mix probabilities must be in [0,1] and sum to at most 1")
            }
            ConfigError::BadSelectionCache(why) => {
                write!(f, "bad selection-cache settings: {why}")
            }
            ConfigError::BadTrace(why) => write!(f, "bad trace settings: {why}"),
            ConfigError::BadReplyPlane(why) => write!(f, "bad reply-plane settings: {why}"),
            ConfigError::BadTimeout(why) => write!(f, "bad timeout settings: {why}"),
            ConfigError::BadFaults(why) => write!(f, "bad fault schedule: {why}"),
            ConfigError::BadSnapshot(why) => write!(f, "bad snapshot settings: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a [`crate::Database`].
///
/// One shard thread is spawned per site; the catalog distributes the
/// logical items over the shards according to `replication`, exactly as the
/// simulator does over sites.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of shard threads (= sites). Each owns the queue manager of the
    /// physical items placed at its site.
    pub num_shards: u32,
    /// Number of logical data items.
    pub num_items: u64,
    /// How copies of logical items are placed across shards.
    pub replication: ReplicationPolicy,
    /// Initial value of every physical item.
    pub initial_value: Value,
    /// Semi-lock enforcement (the paper's proposal) or the lock-all ablation.
    pub enforcement: EnforcementMode,
    /// Method assignment for transactions that do not pin a method.
    pub policy: CcPolicy,
    /// PA's backoff interval `INT` (in timestamp units).
    pub pa_backoff_interval: u64,
    /// Bound of each shard's command inbox; clients block (backpressure)
    /// when a shard falls behind. For [`TransportKind::BatchedRing`] the
    /// bound is rounded up to the next power of two.
    pub shard_inbox_capacity: usize,
    /// The message plane between clients and shards.
    pub transport: TransportKind,
    /// The reply plane between shards/detector and waiting clients.
    pub reply_plane: ReplyPlaneKind,
    /// Bound of each reusable reply mailbox ([`ReplyPlaneKind::Mailbox`]
    /// only; rounded up to the next power of two). Must exceed the
    /// replies one incarnation can have outstanding while its client is
    /// between drains — in this runtime, a couple of replies per
    /// accessed item — or delivering shards briefly yield for the
    /// consumer.
    pub reply_mailbox_capacity: usize,
    /// Maximum concurrently open transactions ([`ReplyPlaneKind::Mailbox`]
    /// only): the reply-mailbox slab holds one reusable mailbox per open
    /// transaction and `begin` fails with
    /// [`crate::TxnError::ReplyPlaneExhausted`] — after a bounded wait —
    /// once this many stay open.
    pub reply_max_clients: usize,
    /// Initial bucket count of the reply plane's resizable lock-free
    /// index (rounded up to a power of two). The index doubles itself as
    /// open transactions approach its load-factor threshold, so this
    /// only sets where growth starts.
    pub reply_index_capacity: usize,
    /// Ceiling on reply-index growth (rounded up to a power of two,
    /// never below `reply_index_capacity`). Registrations colliding once
    /// the index is at this size fall back to a mutex-guarded overflow
    /// map — correct, but off the lock-free path; size it at or above
    /// `reply_max_clients` to keep overflow unreachable.
    pub reply_index_max_capacity: usize,
    /// How long a shard may wait on one transaction's full reply mailbox
    /// before dropping the reply (counted in
    /// [`crate::StatsSnapshot::mailbox_full_drops`]; the client recovers
    /// through the normal timeout/restart machinery). Zero drops as soon
    /// as the bounded spin is exhausted.
    pub reply_deliver_timeout: Duration,
    /// Period of the background deadlock detector.
    pub deadlock_scan_interval: Duration,
    /// Restart attempts per transaction before giving up with
    /// [`crate::TxnError::TooManyRestarts`].
    pub max_restarts: u32,
    /// Bound on one incarnation's wait for grants/replies in `begin`.
    /// An incarnation that sees nothing for this long is aborted and
    /// restarted (with backoff, counted in
    /// [`crate::StatsSnapshot::timeout_restarts`]); a transaction that
    /// exhausts `max_restarts` this way fails with
    /// [`crate::TxnError::ShardUnavailable`] instead of blocking forever
    /// on a dead or partitioned shard.
    pub request_timeout: Duration,
    /// Bound on the commit-time wait for the transaction's trailing
    /// normal grants (the T/O demote conversation). On expiry the commit
    /// returns [`crate::TxnError::ShardUnavailable`]; the writes were
    /// already implemented at demote time, so the outcome is "decided
    /// but unacknowledged", exactly like a timed-out distributed commit.
    pub commit_timeout: Duration,
    /// Per-shard bound on the diagnostic oneshot conversations
    /// ([`crate::Database::waiting_transactions`],
    /// [`crate::Database::log_snapshot`] and the fast-path apply
    /// round-trip). A shard that stays silent past the deadline is
    /// skipped (diagnostics) or reported unavailable (fast path).
    pub diagnostic_timeout: Duration,
    /// Base delay between restart attempts (doubled per attempt up to 128×,
    /// plus a per-transaction jitter to break symmetry).
    pub restart_backoff: Duration,
    /// Seed for the method-mix sampler.
    pub seed: u64,
    /// Amortization of the [`CcPolicy::DynamicStl`] selector: `Some`
    /// memoizes STL′ decisions per quantized transaction shape and re-fits
    /// the model on epoch boundaries (every `epoch_commits` commits or on
    /// observed drift, fed by the per-shard conflict counters); `None`
    /// re-evaluates the full dynamic-programming grid on every selection
    /// (the pre-cache behaviour, kept for overhead comparisons).
    pub selection_cache: Option<CacheSettings>,
    /// Route invariant-confluent transactions (commutative adds, blind
    /// puts, read-only shapes — see [`selection::classify`]) around the
    /// queue managers through the shard's direct-apply bypass. Off forces
    /// every transaction through full coordination (the `m9` baseline).
    pub confluence_fastpath: bool,
    /// The at-apply refusal check of the bypass: the queue manager refuses
    /// a fast-path transaction whenever a touched slot has queued or
    /// granted coordinated work. **Disabling this admits non-serializable
    /// histories** — it exists only as the mutation switch proving the
    /// check is load-bearing (see the runtime's mutation test).
    pub confluence_check: bool,
    /// Serve read-only-classified transactions (see
    /// [`selection::is_read_only`]) from the per-item version chains at
    /// the global read watermark — the fourth method. No grants, no wait
    /// edges, no restart exposure. Off forces read-only transactions
    /// through whatever coordinated method the selector picks (the `m10`
    /// baseline).
    pub snapshot_reads: bool,
    /// The watermark check of the snapshot plane: a snapshot read serves
    /// the newest version stamped at or below the global read watermark.
    /// **Disabling this serves the raw chain head instead — uncommitted
    /// prefixes of in-flight multi-item writers become visible and the
    /// history stops being serializable.** It exists only as the mutation
    /// switch proving the watermark is load-bearing (see the runtime's
    /// mutation test).
    pub snapshot_validation: bool,
    /// Committed versions retained per item **above** what the global
    /// read watermark needs: each item keeps every version a watermark
    /// read could serve plus at most this many newer ones, with a hard
    /// cap of 4× this value against a stalled watermark. Must be at
    /// least 1.
    pub version_retain: usize,
    /// Deterministic fault injection on the client→shard message plane:
    /// `Some(schedule)` arms a [`faultsim::FaultPlane`] with the given
    /// seeded schedule (drop / duplicate / delay / partition per link,
    /// scheduled shard crashes). The schedule must cover exactly
    /// `num_shards` links. `None` (default) is the reliable plane.
    pub faults: Option<faultsim::FaultSchedule>,
    /// Suppress re-delivered duplicate `Access` messages at the queue
    /// manager (keyed by the queued incarnation — TxnIds are never
    /// reused, so a second `Access` from the same incarnation at an item
    /// it already queued at is always a transport-level duplicate).
    /// **Disabling this admits double-queued entries** — it exists only
    /// as the mutation switch proving the guard is load-bearing under
    /// the duplicate-injection schedule.
    pub dedup_access: bool,
    /// The flight-recorder tracing plane: [`trace::TraceLevel::Off`]
    /// records nothing (and allocates nothing), `Counters` keeps phase
    /// counters and the Section-5 span accumulators, `Full` (default)
    /// adds the per-lane event rings, transport dwell stamps and the
    /// anomaly postmortem dumps.
    pub trace: trace::TraceConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_shards: 4,
            num_items: 64,
            replication: ReplicationPolicy::SingleCopy,
            initial_value: 0,
            enforcement: EnforcementMode::SemiLock,
            policy: CcPolicy::Static(CcMethod::TwoPhaseLocking),
            pa_backoff_interval: 1_000,
            shard_inbox_capacity: 256,
            transport: TransportKind::BatchedRing,
            reply_plane: ReplyPlaneKind::Mailbox,
            reply_mailbox_capacity: 256,
            reply_max_clients: 65536,
            reply_index_capacity: 1024,
            reply_index_max_capacity: 1 << 20,
            reply_deliver_timeout: Duration::from_secs(1),
            deadlock_scan_interval: Duration::from_millis(5),
            max_restarts: 256,
            request_timeout: Duration::from_secs(30),
            commit_timeout: Duration::from_secs(30),
            diagnostic_timeout: Duration::from_secs(1),
            restart_backoff: Duration::from_micros(200),
            seed: 0,
            selection_cache: Some(CacheSettings::default()),
            confluence_fastpath: true,
            confluence_check: true,
            snapshot_reads: true,
            snapshot_validation: true,
            version_retain: unified_cc::DEFAULT_VERSION_RETAIN,
            faults: None,
            dedup_access: true,
            trace: trace::TraceConfig::default(),
        }
    }
}

impl RuntimeConfig {
    /// Check the configuration for internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_shards == 0 {
            return Err(ConfigError::NoShards);
        }
        if self.num_items == 0 {
            return Err(ConfigError::NoItems);
        }
        if let CcPolicy::Mix { p_2pl, p_to } = self.policy {
            let ok = (0.0..=1.0).contains(&p_2pl)
                && (0.0..=1.0).contains(&p_to)
                && p_2pl + p_to <= 1.0 + 1e-9;
            if !ok {
                return Err(ConfigError::BadMix);
            }
        }
        if let Some(settings) = &self.selection_cache {
            settings
                .validate()
                .map_err(ConfigError::BadSelectionCache)?;
        }
        self.trace.validate().map_err(ConfigError::BadTrace)?;
        if self.reply_max_clients == 0 {
            return Err(ConfigError::BadReplyPlane(
                "reply_max_clients must be at least 1".into(),
            ));
        }
        if self.reply_index_capacity == 0 {
            return Err(ConfigError::BadReplyPlane(
                "reply_index_capacity must be at least 1".into(),
            ));
        }
        if self.reply_index_max_capacity < self.reply_index_capacity {
            return Err(ConfigError::BadReplyPlane(format!(
                "reply_index_max_capacity ({}) is below reply_index_capacity ({})",
                self.reply_index_max_capacity, self.reply_index_capacity
            )));
        }
        for (name, value) in [
            ("request_timeout", self.request_timeout),
            ("commit_timeout", self.commit_timeout),
            ("diagnostic_timeout", self.diagnostic_timeout),
        ] {
            if value.is_zero() {
                return Err(ConfigError::BadTimeout(format!("{name} must be nonzero")));
            }
        }
        if self.version_retain == 0 {
            return Err(ConfigError::BadSnapshot(
                "version_retain must be at least 1 (the head version is always kept)".into(),
            ));
        }
        if let Some(schedule) = &self.faults {
            if schedule.num_links() != self.num_shards as usize {
                return Err(ConfigError::BadFaults(format!(
                    "schedule covers {} links but the runtime has {} shards",
                    schedule.num_links(),
                    self.num_shards
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(RuntimeConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_shards_and_items_are_rejected() {
        let c = RuntimeConfig {
            num_shards: 0,
            ..RuntimeConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::NoShards));
        let c = RuntimeConfig {
            num_items: 0,
            ..RuntimeConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::NoItems));
    }

    #[test]
    fn bad_mix_is_rejected() {
        let mut c = RuntimeConfig {
            policy: CcPolicy::Mix {
                p_2pl: 0.8,
                p_to: 0.5,
            },
            ..RuntimeConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::BadMix));
        c.policy = CcPolicy::Mix {
            p_2pl: 0.4,
            p_to: 0.3,
        };
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn bad_selection_cache_is_rejected() {
        let c = RuntimeConfig {
            selection_cache: Some(CacheSettings {
                quant_rel: -1.0,
                ..CacheSettings::default()
            }),
            ..RuntimeConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadSelectionCache(_))
        ));
        let c = RuntimeConfig {
            selection_cache: None,
            ..RuntimeConfig::default()
        };
        assert_eq!(c.validate(), Ok(()), "uncached selection is valid");
    }

    #[test]
    fn bad_reply_plane_sizing_is_rejected() {
        let c = RuntimeConfig {
            reply_max_clients: 0,
            ..RuntimeConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::BadReplyPlane(_))));
        let c = RuntimeConfig {
            reply_index_capacity: 0,
            ..RuntimeConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::BadReplyPlane(_))));
        let c = RuntimeConfig {
            reply_index_capacity: 4096,
            reply_index_max_capacity: 1024,
            ..RuntimeConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::BadReplyPlane(_))));
        let c = RuntimeConfig {
            reply_index_capacity: 1024,
            reply_index_max_capacity: 1024,
            ..RuntimeConfig::default()
        };
        assert_eq!(c.validate(), Ok(()), "a fixed-size index is valid");
    }

    #[test]
    fn zero_version_retain_is_rejected() {
        let c = RuntimeConfig {
            version_retain: 0,
            ..RuntimeConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::BadSnapshot(_))));
    }

    #[test]
    fn zero_timeouts_are_rejected() {
        for patch in [
            |c: &mut RuntimeConfig| c.request_timeout = Duration::ZERO,
            |c: &mut RuntimeConfig| c.commit_timeout = Duration::ZERO,
            |c: &mut RuntimeConfig| c.diagnostic_timeout = Duration::ZERO,
        ] {
            let mut c = RuntimeConfig::default();
            patch(&mut c);
            assert!(matches!(c.validate(), Err(ConfigError::BadTimeout(_))));
        }
    }

    #[test]
    fn fault_schedule_link_count_must_match_shards() {
        let schedule = faultsim::FaultSchedule::generate(faultsim::FaultProfile::default(), 1, 2);
        let c = RuntimeConfig {
            num_shards: 4,
            faults: Some(schedule.clone()),
            ..RuntimeConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::BadFaults(_))));
        let c = RuntimeConfig {
            num_shards: 2,
            faults: Some(schedule),
            ..RuntimeConfig::default()
        };
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn bad_trace_config_is_rejected() {
        let c = RuntimeConfig {
            trace: trace::TraceConfig {
                ring_capacity: 0,
                ..trace::TraceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::BadTrace(_))));
        let c = RuntimeConfig {
            trace: trace::TraceConfig {
                level: trace::TraceLevel::Off,
                ring_capacity: 0,
                ..trace::TraceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        assert_eq!(c.validate(), Ok(()), "ring capacity is ignored when off");
    }
}
