//! # runtime — the sharded multi-threaded execution runtime
//!
//! This crate takes the unified concurrency-control engine out of the
//! simulator and serves **live concurrent traffic** with it. The same
//! sans-IO state machines the discrete-event simulator drives —
//! [`unified_cc::QueueManager`] on the data side, [`unified_cc::RequestIssuer`]
//! on the transaction side — are embedded into real threads and real
//! channels:
//!
//! * **Shards** (internal) — one thread per site, owning that site's queue
//!   manager. Protocol messages arrive over a bounded command inbox
//!   (backpressure), replies are routed back through the transaction
//!   registry, and every implemented operation is appended to the shard's
//!   slice of the execution log.
//! * **[`Database`]** — the thread-safe facade. Client threads open
//!   transactions with predeclared read/write sets ([`TxnSpec`]); each
//!   transaction runs under its own concurrency-control method — pinned per
//!   transaction, drawn from a configured mix, or chosen by the STL
//!   selector ([`CcPolicy`]). The calling thread drives its own request
//!   issuer: it blocks on grants, negotiates PA backoffs, retries T/O
//!   rejections and deadlock aborts under fresh timestamps, then executes
//!   and commits.
//! * **Deadlock detector** (internal) — a background thread that
//!   periodically merges the per-shard wait-for edges into a
//!   [`unified_cc::WaitForGraph`] and signals the youngest 2PL member of
//!   each cycle (Corollary 2 guarantees one exists) as a victim.
//! * **Execution-log tap** — [`Database::log_snapshot`] mid-run and
//!   [`RuntimeReport::logs`] at shutdown expose the merged per-item
//!   implementation logs, so every run can be replayed through the
//!   `sercheck` serializability oracle exactly like a simulation.
//!
//! ```
//! use dbmodel::{CcMethod, LogicalItemId};
//! use runtime::{Database, RuntimeConfig, TxnSpec};
//!
//! let db = Database::open(RuntimeConfig::default()).unwrap();
//! let spec = TxnSpec::new()
//!     .read(LogicalItemId(1))
//!     .write(LogicalItemId(2))
//!     .method(CcMethod::PrecedenceAgreement);
//! let receipt = db
//!     .run_transaction(&spec, |reads| {
//!         let seen = reads[&LogicalItemId(1)];
//!         vec![(LogicalItemId(2), seen + 1)]
//!     })
//!     .unwrap();
//! assert_eq!(receipt.method, CcMethod::PrecedenceAgreement);
//! let report = db.shutdown().unwrap();
//! assert!(report.serializable().is_ok());
//! ```

pub mod config;
pub mod db;
pub mod report;

mod clock;
mod detector;
mod registry;
mod shard;
mod stats;

pub use config::{CcPolicy, ConfigError, ReplyPlaneKind, RuntimeConfig, TransportKind};
pub use db::{ActiveTxn, Database, TxnError, TxnReceipt, TxnSpec};
// The fault-plane vocabulary callers need to arm [`RuntimeConfig::faults`]
// and consume [`Database::fault_counters`].
pub use faultsim::{FaultCounters, FaultProfile, FaultSchedule};
pub use report::RuntimeReport;
pub use stats::StatsSnapshot;
// The tracing-plane vocabulary callers need to configure tracing
// ([`RuntimeConfig::trace`]) and consume [`Database::trace_report`] /
// [`Database::trace_snapshot`].
pub use trace::{Phase, TraceConfig, TraceEvent, TraceLevel, TraceLog, TraceReport};
