//! Lock-free runtime counters and their copyable snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

use selection::CacheStats;

/// Counters one shard thread maintains about its own queue manager: the
/// per-shard half of the feedback loop that drives the selection cache's
/// epoch logic (grant and conflict rates) and the per-shard balance
/// reported by the experiment binaries.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Lock grants issued by this shard.
    pub(crate) grants: AtomicU64,
    /// Grants issued pre-scheduled, i.e. under a standing conflict — the
    /// shard-local conflict signal.
    pub(crate) prescheduled: AtomicU64,
    /// Operations implemented (committed into this shard's log slice).
    pub(crate) implemented: AtomicU64,
    /// Abort messages processed (T/O restarts, deadlock victims, user
    /// aborts reaching this shard).
    pub(crate) aborts: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self) -> ShardCounterSnapshot {
        ShardCounterSnapshot {
            grants: self.grants.load(Ordering::Relaxed),
            prescheduled: self.prescheduled.load(Ordering::Relaxed),
            implemented: self.implemented.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
        }
    }
}

/// A copy of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounterSnapshot {
    /// Lock grants issued by this shard.
    pub grants: u64,
    /// Grants issued under a standing conflict (pre-scheduled).
    pub prescheduled: u64,
    /// Operations implemented by this shard.
    pub implemented: u64,
    /// Abort messages this shard processed.
    pub aborts: u64,
}

/// Counters updated concurrently by client threads, shard threads and the
/// deadlock detector.
#[derive(Debug, Default)]
pub(crate) struct RuntimeStats {
    pub(crate) committed: AtomicU64,
    pub(crate) rejected_restarts: AtomicU64,
    pub(crate) deadlock_restarts: AtomicU64,
    pub(crate) backoff_rounds: AtomicU64,
    pub(crate) deadlock_victims: AtomicU64,
    pub(crate) user_aborts: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) grants: AtomicU64,
    pub(crate) implemented_ops: AtomicU64,
    /// Dynamic-policy selections performed.
    pub(crate) selections: AtomicU64,
    /// Wall-clock nanoseconds spent inside the selector (dynamic policy).
    pub(crate) selection_nanos: AtomicU64,
    pub(crate) per_shard: Vec<ShardCounters>,
}

/// A consistent-enough copy of the runtime counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transactions committed.
    pub committed: u64,
    /// Incarnations restarted after a T/O rejection.
    pub rejected_restarts: u64,
    /// Incarnations restarted as deadlock victims.
    pub deadlock_restarts: u64,
    /// PA backoff rounds performed.
    pub backoff_rounds: u64,
    /// Victim signals raised by the deadlock detector.
    pub deadlock_victims: u64,
    /// Transactions aborted by the caller.
    pub user_aborts: u64,
    /// Transactions that gave up after `max_restarts` attempts.
    pub failed: u64,
    /// Lock grants issued across all shards.
    pub grants: u64,
    /// Operations implemented (entered the execution log) across all shards.
    pub implemented_ops: u64,
    /// Dynamic-policy selections performed.
    pub selections: u64,
    /// Wall-clock nanoseconds spent inside the selector with its locks
    /// already held (dynamic policy).
    pub selection_nanos: u64,
    /// Selection-cache counters (all zero when the cache is disabled or
    /// the policy is not dynamic).
    pub cache: CacheStats,
    /// Per-shard grant / conflict / implementation counters.
    pub per_shard: Vec<ShardCounterSnapshot>,
}

impl RuntimeStats {
    /// Counters for a runtime with `shards` shard threads.
    pub(crate) fn with_shards(shards: usize) -> Self {
        RuntimeStats {
            per_shard: (0..shards).map(|_| ShardCounters::default()).collect(),
            ..RuntimeStats::default()
        }
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            committed: self.committed.load(Ordering::Relaxed),
            rejected_restarts: self.rejected_restarts.load(Ordering::Relaxed),
            deadlock_restarts: self.deadlock_restarts.load(Ordering::Relaxed),
            backoff_rounds: self.backoff_rounds.load(Ordering::Relaxed),
            deadlock_victims: self.deadlock_victims.load(Ordering::Relaxed),
            user_aborts: self.user_aborts.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            grants: self.grants.load(Ordering::Relaxed),
            implemented_ops: self.implemented_ops.load(Ordering::Relaxed),
            selections: self.selections.load(Ordering::Relaxed),
            selection_nanos: self.selection_nanos.load(Ordering::Relaxed),
            cache: CacheStats::default(),
            per_shard: self.per_shard.iter().map(ShardCounters::snapshot).collect(),
        }
    }

    /// Total pre-scheduled (conflicted) grants over all shards.
    pub(crate) fn prescheduled_grants(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.prescheduled.load(Ordering::Relaxed))
            .sum()
    }
}

impl StatsSnapshot {
    /// Total restarts (rejections plus deadlock aborts).
    pub fn restarts(&self) -> u64 {
        self.rejected_restarts + self.deadlock_restarts
    }

    /// Total pre-scheduled (conflicted) grants over all shards.
    pub fn prescheduled_grants(&self) -> u64 {
        self.per_shard.iter().map(|s| s.prescheduled).sum()
    }

    /// Mean microseconds spent selecting a method per dynamic selection.
    pub fn selection_micros_per_txn(&self) -> f64 {
        if self.selections == 0 {
            0.0
        } else {
            self.selection_nanos as f64 / self.selections as f64 / 1_000.0
        }
    }
}
