//! Lock-free runtime counters and their copyable snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters updated concurrently by client threads, shard threads and the
/// deadlock detector.
#[derive(Debug, Default)]
pub(crate) struct RuntimeStats {
    pub(crate) committed: AtomicU64,
    pub(crate) rejected_restarts: AtomicU64,
    pub(crate) deadlock_restarts: AtomicU64,
    pub(crate) backoff_rounds: AtomicU64,
    pub(crate) deadlock_victims: AtomicU64,
    pub(crate) user_aborts: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) grants: AtomicU64,
    pub(crate) implemented_ops: AtomicU64,
}

/// A consistent-enough copy of the runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transactions committed.
    pub committed: u64,
    /// Incarnations restarted after a T/O rejection.
    pub rejected_restarts: u64,
    /// Incarnations restarted as deadlock victims.
    pub deadlock_restarts: u64,
    /// PA backoff rounds performed.
    pub backoff_rounds: u64,
    /// Victim signals raised by the deadlock detector.
    pub deadlock_victims: u64,
    /// Transactions aborted by the caller.
    pub user_aborts: u64,
    /// Transactions that gave up after `max_restarts` attempts.
    pub failed: u64,
    /// Lock grants issued across all shards.
    pub grants: u64,
    /// Operations implemented (entered the execution log) across all shards.
    pub implemented_ops: u64,
}

impl RuntimeStats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            committed: self.committed.load(Ordering::Relaxed),
            rejected_restarts: self.rejected_restarts.load(Ordering::Relaxed),
            deadlock_restarts: self.deadlock_restarts.load(Ordering::Relaxed),
            backoff_rounds: self.backoff_rounds.load(Ordering::Relaxed),
            deadlock_victims: self.deadlock_victims.load(Ordering::Relaxed),
            user_aborts: self.user_aborts.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            grants: self.grants.load(Ordering::Relaxed),
            implemented_ops: self.implemented_ops.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Total restarts (rejections plus deadlock aborts).
    pub fn restarts(&self) -> u64 {
        self.rejected_restarts + self.deadlock_restarts
    }
}
