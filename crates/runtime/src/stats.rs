//! Lock-free runtime counters, striped metric shards and their copyable
//! snapshot.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use metrics::SimMetrics;
use selection::CacheStats;
use simkit::time::SimTime;
use transport::CachePadded;

/// Commit-path-free metric collection: `SimMetrics` striped over
/// thread-affine shards. Each recording thread owns one stripe (threads
/// are assigned round-robin on first use), so the stripe mutex it takes
/// is effectively private — recording never contends with other
/// recorders, and never with admission. The only reader that touches
/// other stripes is [`MetricsShards::merged`], which the selector calls
/// at epoch-refit boundaries (and shutdown calls once); it locks each
/// stripe briefly in turn, so a refit can run *while* commits keep
/// recording.
pub(crate) struct MetricsShards {
    stripes: Box<[CachePadded<Mutex<SimMetrics>>]>,
    next_stripe: AtomicUsize,
}

/// Stripes in a [`MetricsShards`]. Chosen to comfortably exceed typical
/// client-thread counts; threads beyond this share stripes round-robin
/// (still correct, marginally more contention).
const METRIC_STRIPES: usize = 16;

thread_local! {
    /// This thread's stripe assignment (`usize::MAX` = unassigned).
    static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
}

impl MetricsShards {
    pub(crate) fn new() -> Self {
        MetricsShards {
            stripes: (0..METRIC_STRIPES)
                .map(|_| CachePadded::new(Mutex::new(SimMetrics::new())))
                .collect(),
            next_stripe: AtomicUsize::new(0),
        }
    }

    /// Record into the calling thread's stripe.
    pub(crate) fn with_local<R>(&self, f: impl FnOnce(&mut SimMetrics) -> R) -> R {
        let idx = STRIPE.with(|slot| {
            let mut idx = slot.get();
            if idx == usize::MAX {
                idx = self.next_stripe.fetch_add(1, Ordering::Relaxed) % METRIC_STRIPES;
                slot.set(idx);
            }
            idx
        });
        let mut stripe = self.stripes[idx % METRIC_STRIPES]
            .lock()
            .expect("metrics stripe poisoned");
        f(&mut stripe)
    }

    /// Fold every stripe into one collection covering `[0, end]`.
    pub(crate) fn merged(&self, end: SimTime) -> SimMetrics {
        let mut merged = SimMetrics::new();
        for stripe in self.stripes.iter() {
            let stripe = stripe.lock().expect("metrics stripe poisoned");
            merged.merge_from(&stripe);
        }
        merged.set_time_span(SimTime::ZERO, end);
        merged
    }
}

/// Counters one shard thread maintains about its own queue manager: the
/// per-shard half of the feedback loop that drives the selection cache's
/// epoch logic (grant and conflict rates) and the per-shard balance
/// reported by the experiment binaries.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Lock grants issued by this shard.
    pub(crate) grants: AtomicU64,
    /// Grants issued pre-scheduled, i.e. under a standing conflict — the
    /// shard-local conflict signal.
    pub(crate) prescheduled: AtomicU64,
    /// Operations implemented (committed into this shard's log slice).
    pub(crate) implemented: AtomicU64,
    /// Abort messages processed (T/O restarts, deadlock victims, user
    /// aborts reaching this shard).
    pub(crate) aborts: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self) -> ShardCounterSnapshot {
        ShardCounterSnapshot {
            grants: self.grants.load(Ordering::Relaxed),
            prescheduled: self.prescheduled.load(Ordering::Relaxed),
            implemented: self.implemented.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
        }
    }
}

/// A copy of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounterSnapshot {
    /// Lock grants issued by this shard.
    pub grants: u64,
    /// Grants issued under a standing conflict (pre-scheduled).
    pub prescheduled: u64,
    /// Operations implemented by this shard.
    pub implemented: u64,
    /// Abort messages this shard processed.
    pub aborts: u64,
}

/// Counters updated concurrently by client threads, shard threads and the
/// deadlock detector.
#[derive(Debug, Default)]
pub(crate) struct RuntimeStats {
    pub(crate) committed: AtomicU64,
    pub(crate) rejected_restarts: AtomicU64,
    pub(crate) deadlock_restarts: AtomicU64,
    pub(crate) backoff_rounds: AtomicU64,
    pub(crate) deadlock_victims: AtomicU64,
    pub(crate) user_aborts: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) grants: AtomicU64,
    pub(crate) implemented_ops: AtomicU64,
    /// Transactions applied through the coordination-avoidance bypass.
    pub(crate) fastpath_applied: AtomicU64,
    /// Bypass attempts refused by a queue manager (touched slot had
    /// coordinated work in flight) and re-run on the coordinated path.
    pub(crate) fastpath_refused: AtomicU64,
    /// Read-only transactions served from the version chains at the
    /// global read watermark (no coordination at all).
    pub(crate) snapshot_reads: AtomicU64,
    /// Snapshot attempts refused by a shard (a requested item had no
    /// version at the watermark — pruned or crash-wiped) and re-run on
    /// the coordinated path.
    pub(crate) snapshot_refused: AtomicU64,
    /// Dynamic-policy selections performed.
    pub(crate) selections: AtomicU64,
    /// Wall-clock nanoseconds spent inside the selector (dynamic policy).
    pub(crate) selection_nanos: AtomicU64,
    /// Mirror of the cached selector's counters, republished after every
    /// selection so [`crate::Database::stats`] never takes the selector
    /// mutex (stats polling must not contend with admission).
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) cache_refits: AtomicU64,
    pub(crate) cache_flushes: AtomicU64,
    pub(crate) cache_entries: AtomicU64,
    pub(crate) cache_epoch: AtomicU64,
    /// Incarnations restarted because `request_timeout` expired before
    /// every access was granted (fault plane / dead shard).
    pub(crate) timeout_restarts: AtomicU64,
    /// Transactions that gave up with [`crate::TxnError::ShardUnavailable`]
    /// after exhausting timeout restarts or a bounded commit wait.
    pub(crate) shard_unavailable: AtomicU64,
    /// Stranded-transaction queue entries aborted by the detector's
    /// cleanup sweep (zombie state left by dropped or late messages).
    pub(crate) cleanup_aborts: AtomicU64,
    /// Duplicate `Access` deliveries suppressed by the queue managers'
    /// idempotent-redelivery guard.
    pub(crate) dup_suppressed: AtomicU64,
    /// Shard crash faults injected (each wipes the shard's ungranted
    /// queue entries after an unresponsive outage).
    pub(crate) shard_crashes: AtomicU64,
    pub(crate) per_shard: Vec<ShardCounters>,
}

/// A consistent-enough copy of the runtime counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transactions committed.
    pub committed: u64,
    /// Incarnations restarted after a T/O rejection.
    pub rejected_restarts: u64,
    /// Incarnations restarted as deadlock victims.
    pub deadlock_restarts: u64,
    /// PA backoff rounds performed.
    pub backoff_rounds: u64,
    /// Victim signals raised by the deadlock detector.
    pub deadlock_victims: u64,
    /// Transactions aborted by the caller.
    pub user_aborts: u64,
    /// Transactions that gave up after `max_restarts` attempts.
    pub failed: u64,
    /// Lock grants issued across all shards.
    pub grants: u64,
    /// Operations implemented (entered the execution log) across all shards.
    pub implemented_ops: u64,
    /// Transactions committed through the coordination-avoidance bypass
    /// (no grants, no precedence entries, no queue time).
    pub fastpath_applied: u64,
    /// Bypass attempts refused because a touched slot had queued or
    /// granted coordinated work; each re-ran on the coordinated path.
    pub fastpath_refused: u64,
    /// Read-only transactions served from the per-item version chains at
    /// the global read watermark — the snapshot plane's fourth method.
    pub snapshot_reads: u64,
    /// Snapshot attempts a shard refused (no version at the watermark);
    /// each re-ran on the coordinated path.
    pub snapshot_refused: u64,
    /// Dynamic-policy selections performed.
    pub selections: u64,
    /// Wall-clock nanoseconds spent inside the selector with its locks
    /// already held (dynamic policy).
    pub selection_nanos: u64,
    /// Stale reply events suppressed by the reply plane: deliveries
    /// dropped because no live incarnation matched, plus (mailbox plane)
    /// events discarded by the consumer's incarnation tag. Filled in by
    /// [`crate::Database::stats`] from the registry, not by
    /// `RuntimeStats` itself.
    pub stale_reply_events: u64,
    /// Live registrations currently parked on the reply-mailbox slab's
    /// overflow map (bucket collisions with the resizable index at its
    /// growth ceiling; always zero on the mpsc reply plane). Nonzero is
    /// correct but means `reply_index_max_capacity` is undersized for
    /// the number of concurrently live transactions. Filled in by
    /// [`crate::Database::stats`] from the registry.
    pub mailbox_overflow_entries: u64,
    /// Buckets in the newest generation of the reply plane's resizable
    /// index (zero on the mpsc reply plane). Filled in by
    /// [`crate::Database::stats`] from the registry.
    pub mailbox_index_capacity: u64,
    /// Completed growths of the reply plane's resizable index since the
    /// database was opened. Filled in by [`crate::Database::stats`] from
    /// the registry.
    pub mailbox_index_resizes: u64,
    /// Reply deliveries dropped because a live mailbox stayed full past
    /// `reply_deliver_timeout` (a stalled client thread; the transaction
    /// recovers through the timeout/restart machinery). Filled in by
    /// [`crate::Database::stats`] from the registry.
    pub mailbox_full_drops: u64,
    /// Trace events recorded by the flight-recorder plane across every
    /// lane (0 when tracing is off). Filled in by
    /// [`crate::Database::stats`] from the trace plane.
    pub trace_events: u64,
    /// Incarnations restarted because `request_timeout` expired before
    /// every access was granted (fault plane / dead shard).
    pub timeout_restarts: u64,
    /// Transactions that gave up with [`crate::TxnError::ShardUnavailable`]
    /// after exhausting timeout restarts or a bounded commit wait.
    pub shard_unavailable: u64,
    /// Stranded-transaction queue entries aborted by the detector's
    /// cleanup sweep.
    pub cleanup_aborts: u64,
    /// Duplicate `Access` deliveries suppressed by the queue managers.
    pub dup_suppressed: u64,
    /// Shard crash faults injected by the fault plane.
    pub shard_crashes: u64,
    /// Selection-cache counters (all zero when the cache is disabled or
    /// the policy is not dynamic).
    pub cache: CacheStats,
    /// Per-shard grant / conflict / implementation counters.
    pub per_shard: Vec<ShardCounterSnapshot>,
}

impl RuntimeStats {
    /// Counters for a runtime with `shards` shard threads.
    pub(crate) fn with_shards(shards: usize) -> Self {
        RuntimeStats {
            per_shard: (0..shards).map(|_| ShardCounters::default()).collect(),
            ..RuntimeStats::default()
        }
    }

    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            committed: self.committed.load(Ordering::Relaxed),
            rejected_restarts: self.rejected_restarts.load(Ordering::Relaxed),
            deadlock_restarts: self.deadlock_restarts.load(Ordering::Relaxed),
            backoff_rounds: self.backoff_rounds.load(Ordering::Relaxed),
            deadlock_victims: self.deadlock_victims.load(Ordering::Relaxed),
            user_aborts: self.user_aborts.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            grants: self.grants.load(Ordering::Relaxed),
            implemented_ops: self.implemented_ops.load(Ordering::Relaxed),
            fastpath_applied: self.fastpath_applied.load(Ordering::Relaxed),
            fastpath_refused: self.fastpath_refused.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            snapshot_refused: self.snapshot_refused.load(Ordering::Relaxed),
            selections: self.selections.load(Ordering::Relaxed),
            selection_nanos: self.selection_nanos.load(Ordering::Relaxed),
            stale_reply_events: 0,
            mailbox_overflow_entries: 0,
            mailbox_index_capacity: 0,
            mailbox_index_resizes: 0,
            mailbox_full_drops: 0,
            trace_events: 0,
            timeout_restarts: self.timeout_restarts.load(Ordering::Relaxed),
            shard_unavailable: self.shard_unavailable.load(Ordering::Relaxed),
            cleanup_aborts: self.cleanup_aborts.load(Ordering::Relaxed),
            dup_suppressed: self.dup_suppressed.load(Ordering::Relaxed),
            shard_crashes: self.shard_crashes.load(Ordering::Relaxed),
            cache: CacheStats {
                hits: self.cache_hits.load(Ordering::Relaxed),
                misses: self.cache_misses.load(Ordering::Relaxed),
                refits: self.cache_refits.load(Ordering::Relaxed),
                flushes: self.cache_flushes.load(Ordering::Relaxed),
                entries: self.cache_entries.load(Ordering::Relaxed),
                epoch: self.cache_epoch.load(Ordering::Relaxed),
            },
            per_shard: self.per_shard.iter().map(ShardCounters::snapshot).collect(),
        }
    }

    /// Republish the cached selector's counters (called with the selector
    /// mutex already released). Monotone counters use `fetch_max` so a
    /// publisher racing with a fresher snapshot can never walk them
    /// backwards; `entries` is a gauge and takes the last write.
    pub(crate) fn publish_cache_stats(&self, cs: CacheStats) {
        self.cache_hits.fetch_max(cs.hits, Ordering::Relaxed);
        self.cache_misses.fetch_max(cs.misses, Ordering::Relaxed);
        self.cache_refits.fetch_max(cs.refits, Ordering::Relaxed);
        self.cache_flushes.fetch_max(cs.flushes, Ordering::Relaxed);
        self.cache_entries.store(cs.entries, Ordering::Relaxed);
        self.cache_epoch.fetch_max(cs.epoch, Ordering::Relaxed);
    }

    /// Total pre-scheduled (conflicted) grants over all shards.
    pub(crate) fn prescheduled_grants(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.prescheduled.load(Ordering::Relaxed))
            .sum()
    }
}

impl StatsSnapshot {
    /// Total restarts (rejections plus deadlock aborts).
    pub fn restarts(&self) -> u64 {
        self.rejected_restarts + self.deadlock_restarts
    }

    /// Total pre-scheduled (conflicted) grants over all shards.
    pub fn prescheduled_grants(&self) -> u64 {
        self.per_shard.iter().map(|s| s.prescheduled).sum()
    }

    /// Mean microseconds spent selecting a method per dynamic selection.
    pub fn selection_micros_per_txn(&self) -> f64 {
        if self.selections == 0 {
            0.0
        } else {
            self.selection_nanos as f64 / self.selections as f64 / 1_000.0
        }
    }
}
