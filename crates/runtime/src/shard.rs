//! Shard threads: one per site, each owning that site's [`QueueManager`].
//!
//! A shard is the runtime analogue of the simulator's per-site queue
//! manager. It drains a bounded command inbox (backpressure towards the
//! clients), applies each [`RequestMsg`] to its item states, routes the
//! produced replies through the [`Registry`], and appends every implemented
//! operation to its private slice of the execution log. Because every
//! physical item lives on exactly one shard, the per-item implementation
//! order — the thing the serializability oracle consumes — is exactly the
//! order the owning shard processed the operations in, with no further
//! synchronisation.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use dbmodel::{LogSet, SiteId, TxnId};
use pam::{GrantClass, RequestMsg};
use unified_cc::{QmEvent, QueueManager};

use crate::registry::Registry;
use crate::stats::RuntimeStats;

/// Commands a shard thread processes.
pub(crate) enum ShardCmd {
    /// Apply one protocol message; `origin` is the issuing site (used for
    /// precedence tie-breaking).
    Handle { origin: SiteId, msg: RequestMsg },
    /// Report the shard's current wait-for edges (deadlock detector).
    WaitEdges(Sender<Vec<(TxnId, TxnId)>>),
    /// Report the transactions currently queued and not granted
    /// (diagnostics).
    Waiting(Sender<Vec<TxnId>>),
    /// Report a copy of the shard's execution-log slice (live log tap).
    LogSnapshot(Sender<LogSet>),
    /// Drain and exit, returning the final log slice through the join
    /// handle.
    Shutdown,
}

/// A running shard thread.
pub(crate) struct ShardHandle {
    pub(crate) tx: SyncSender<ShardCmd>,
    pub(crate) join: JoinHandle<(SiteId, LogSet)>,
}

/// Spawn the shard thread for `site`, taking ownership of its queue
/// manager. `idx` is the shard's slot in the runtime's per-shard counter
/// table.
pub(crate) fn spawn(
    qm: QueueManager,
    idx: usize,
    inbox: Receiver<ShardCmd>,
    tx: SyncSender<ShardCmd>,
    registry: Arc<Registry>,
    stats: Arc<RuntimeStats>,
) -> ShardHandle {
    let site = qm.site();
    let join = std::thread::Builder::new()
        .name(format!("cc-shard-{}", site.0))
        .spawn(move || shard_loop(qm, idx, inbox, registry, stats))
        .expect("failed to spawn shard thread");
    ShardHandle { tx, join }
}

fn shard_loop(
    mut qm: QueueManager,
    idx: usize,
    inbox: Receiver<ShardCmd>,
    registry: Arc<Registry>,
    stats: Arc<RuntimeStats>,
) -> (SiteId, LogSet) {
    let site = qm.site();
    let mut logs = LogSet::new();
    let counters = &stats.per_shard[idx];
    // Exiting on a closed channel (all senders dropped) covers the case of
    // a `Database` dropped without an explicit shutdown.
    while let Ok(cmd) = inbox.recv() {
        match cmd {
            ShardCmd::Handle { origin, msg } => {
                if matches!(msg, RequestMsg::Abort { .. }) {
                    counters.aborts.fetch_add(1, Ordering::Relaxed);
                }
                let output = qm.handle(origin, &msg);
                for event in &output.events {
                    match *event {
                        QmEvent::GrantIssued { class, .. } => {
                            stats.grants.fetch_add(1, Ordering::Relaxed);
                            counters.grants.fetch_add(1, Ordering::Relaxed);
                            if class == GrantClass::PreScheduled {
                                counters.prescheduled.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        QmEvent::Implemented { item, txn, access } => {
                            logs.record(item, txn, access);
                            stats.implemented_ops.fetch_add(1, Ordering::Relaxed);
                            counters.implemented.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                for reply in output.replies {
                    registry.deliver(reply);
                }
            }
            ShardCmd::WaitEdges(reply_to) => {
                let _ = reply_to.send(qm.wait_edges());
            }
            ShardCmd::Waiting(reply_to) => {
                let _ = reply_to.send(qm.waiting_txns());
            }
            ShardCmd::LogSnapshot(reply_to) => {
                let _ = reply_to.send(logs.clone());
            }
            ShardCmd::Shutdown => break,
        }
    }
    (site, logs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{AccessMode, CcMethod, LogicalItemId, PhysicalItemId, Timestamp, TsTuple, TxnId};
    use std::sync::mpsc;
    use unified_cc::EnforcementMode;

    fn item() -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(1), SiteId(0))
    }

    fn spawn_one() -> (ShardHandle, Arc<Registry>, Arc<RuntimeStats>) {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(item(), 42, EnforcementMode::SemiLock);
        let registry = Arc::new(Registry::new());
        let stats = Arc::new(RuntimeStats::with_shards(1));
        let (tx, rx) = mpsc::sync_channel(16);
        let handle = spawn(qm, 0, rx, tx, Arc::clone(&registry), Arc::clone(&stats));
        (handle, registry, stats)
    }

    #[test]
    fn shard_grants_logs_and_shuts_down() {
        let (handle, registry, stats) = spawn_one();
        let (ev_tx, ev_rx) = mpsc::channel();
        registry.register(TxnId(1), CcMethod::TwoPhaseLocking, ev_tx);
        handle
            .tx
            .send(ShardCmd::Handle {
                origin: SiteId(0),
                msg: RequestMsg::Access {
                    txn: TxnId(1),
                    item: item(),
                    mode: AccessMode::Write,
                    method: CcMethod::TwoPhaseLocking,
                    ts: TsTuple::new(Timestamp(1), 10),
                },
            })
            .unwrap();
        // The grant is routed through the registry.
        assert!(matches!(
            ev_rx.recv().unwrap(),
            crate::registry::ClientEvent::Reply(pam::ReplyMsg::Grant { .. })
        ));
        handle
            .tx
            .send(ShardCmd::Handle {
                origin: SiteId(0),
                msg: RequestMsg::Release {
                    txn: TxnId(1),
                    item: item(),
                    write_value: Some(7),
                },
            })
            .unwrap();
        let (log_tx, log_rx) = mpsc::channel();
        handle.tx.send(ShardCmd::LogSnapshot(log_tx)).unwrap();
        let logs = log_rx.recv().unwrap();
        assert_eq!(logs.total_ops(), 1);
        handle.tx.send(ShardCmd::Shutdown).unwrap();
        let (site, logs) = handle.join.join().unwrap();
        assert_eq!(site, SiteId(0));
        assert_eq!(logs.total_ops(), 1);
        assert_eq!(stats.grants.load(Ordering::Relaxed), 1);
        assert_eq!(stats.implemented_ops.load(Ordering::Relaxed), 1);
        let shard0 = &stats.snapshot().per_shard[0];
        assert_eq!(shard0.grants, 1);
        assert_eq!(shard0.implemented, 1);
        assert_eq!(shard0.prescheduled, 0, "uncontended grant is normal");
        assert_eq!(shard0.aborts, 0);
    }

    #[test]
    fn shard_exits_when_all_senders_drop() {
        let (handle, _registry, _stats) = spawn_one();
        drop(handle.tx);
        let (_, logs) = handle.join.join().unwrap();
        assert_eq!(logs.total_ops(), 0);
    }
}
