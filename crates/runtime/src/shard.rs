//! Shard threads: one per site, each owning that site's [`QueueManager`].
//!
//! A shard is the runtime analogue of the simulator's per-site queue
//! manager. It drains a bounded command inbox (backpressure towards the
//! clients), pushes each drained [`ShardCmd::HandleBatch`] through one
//! `QueueManager::handle_batch` call into a reusable [`QmSink`] (no
//! per-message `QmOutput` allocation anywhere on the path), flushes the
//! accumulated replies through the [`Registry`] once per drained batch,
//! and appends every implemented operation to its private slice of the
//! execution log. Because every
//! physical item lives on exactly one shard, the per-item implementation
//! order — the thing the serializability oracle consumes — is exactly the
//! order the owning shard processed the operations in, with no further
//! synchronisation.
//!
//! Two message planes exist (see [`crate::config::TransportKind`]): the
//! batched lock-free ring, where one consumer wakeup drains *everything*
//! enqueued since the last one and replies are flushed through the
//! registry once per drained batch, and the legacy `std::sync::mpsc`
//! plane (one command per recv) kept as the measured baseline.
//!
//! Shutdown drains first: a [`ShardCmd::Shutdown`] marks the loop for
//! exit, but every command already enqueued — including commands ahead of
//! or behind it in the same drained batch — is still processed before the
//! thread returns its log slice. Without this, a release enqueued by a
//! committing client just before shutdown could be dropped and its write
//! silently lost from the final log.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use dbmodel::{AccessMode, LogSet, PhysicalItemId, SiteId, Timestamp, TxnId, Value};
use pam::{GrantClass, RequestMsg};
use trace::{Phase, TraceLevel, TracePlane};
use transport::batch::SmallBatch;
use transport::oneshot::OneshotSender;
use transport::ring::{RingReceiver, RingSender};
use unified_cc::{ConfluentOp, QmEvent, QmSink, QueueManager};

use crate::clock::CommitClock;
use crate::registry::Registry;
use crate::stats::RuntimeStats;

/// Commands a shard thread processes.
pub(crate) enum ShardCmd {
    /// Apply one protocol message; `origin` is the issuing site (used for
    /// precedence tie-breaking). The mpsc plane's unit of transfer.
    Handle { origin: SiteId, msg: RequestMsg },
    /// Apply a transaction's messages for this shard in order: the ring
    /// plane's unit of transfer, built by the client-side send batcher.
    /// Small batches live inline in the command itself — no heap
    /// allocation crosses the thread boundary.
    HandleBatch {
        origin: SiteId,
        msgs: SmallBatch<RequestMsg>,
    },
    /// Apply an invariant-confluent transaction through the queue
    /// manager's coordination-avoidance bypass: one command, no grants,
    /// no queue transitions. The shard answers through `reply` —
    /// `Some(reads)` when applied, `None` when the queue manager refused
    /// (a touched slot had coordinated work in flight) and the client
    /// must fall back to the coordinated path.
    ApplyConfluent {
        origin: SiteId,
        txn: TxnId,
        ops: Vec<ConfluentOp>,
        check: bool,
        reply: OneshotSender<Option<Vec<(PhysicalItemId, Value)>>>,
    },
    /// Serve a read-only transaction from the item version chains at
    /// timestamp `ts` (the global read watermark the client loaded): no
    /// grants, no queue transitions, no wait edges. The shard answers
    /// `Some(values)` when every item had a version at `ts`, `None` when
    /// any chain was pruned past it (or the item is unknown here) and the
    /// client must fall back to the coordinated path. Served reads enter
    /// the execution log stamped with the version they observed so the
    /// serializability oracle can order them against writers.
    SnapshotRead {
        txn: TxnId,
        ts: Timestamp,
        items: Vec<PhysicalItemId>,
        reply: OneshotSender<Option<Vec<(PhysicalItemId, Value)>>>,
    },
    /// Injected node fault: go unresponsive for `outage` (the inbox backs
    /// up, exerting real backpressure on clients), then come back having
    /// lost all *ungranted* queue entries — the partial-amnesia crash
    /// model. Granted entries, held locks, item values and timestamps
    /// survive (they model state re-read from the durable log tap on
    /// restart); waiters that had not been granted are simply gone and
    /// their clients recover through the timeout/restart machinery.
    Crash { outage: std::time::Duration },
    /// Report every transaction with any queue or lock presence on this
    /// shard (detector's stranded-transaction sweep).
    PresentTxns(OneshotSender<Vec<TxnId>>),
    /// Abort the listed transactions' residual state on this shard (the
    /// detector's cleanup of transactions no longer registered anywhere).
    Cleanup(Vec<TxnId>),
    /// Report the shard's current wait-for edges (deadlock detector).
    WaitEdges(OneshotSender<Vec<(TxnId, TxnId)>>),
    /// Report the transactions currently queued and not granted
    /// (diagnostics).
    Waiting(OneshotSender<Vec<TxnId>>),
    /// Report a copy of the shard's execution-log slice (live log tap).
    LogSnapshot(OneshotSender<LogSet>),
    /// Drain everything already enqueued, then exit, returning the final
    /// log slice through the join handle.
    Shutdown,
}

/// A clone-able handle for enqueueing commands at a shard, independent of
/// the plane the database was opened with.
pub(crate) enum ShardSender {
    Ring(RingSender<ShardCmd>),
    Mpsc(SyncSender<ShardCmd>),
}

impl Clone for ShardSender {
    fn clone(&self) -> Self {
        match self {
            ShardSender::Ring(tx) => ShardSender::Ring(tx.clone()),
            ShardSender::Mpsc(tx) => ShardSender::Mpsc(tx.clone()),
        }
    }
}

/// The shard is gone (already shut down).
#[derive(Debug)]
pub(crate) struct ShardClosed;

impl ShardSender {
    /// Enqueue a command, blocking while the shard's inbox is full.
    pub(crate) fn send(&self, cmd: ShardCmd) -> Result<(), ShardClosed> {
        match self {
            ShardSender::Ring(tx) => tx.send(cmd).map_err(|_| ShardClosed),
            ShardSender::Mpsc(tx) => tx.send(cmd).map_err(|_| ShardClosed),
        }
    }
}

/// The consuming end of a shard's inbox.
pub(crate) enum ShardInbox {
    Ring(RingReceiver<ShardCmd>),
    Mpsc(Receiver<ShardCmd>),
}

impl ShardInbox {
    /// Block until at least one command is available and move every
    /// available command into `buf`. The ring plane drains the whole ring
    /// (amortising one wakeup over all of it); the mpsc plane moves
    /// exactly one command per call, faithful to the pre-batching
    /// baseline. `Err` means every sender is gone and the inbox is empty.
    fn next_batch(&mut self, buf: &mut Vec<ShardCmd>) -> Result<(), ShardClosed> {
        match self {
            ShardInbox::Ring(rx) => rx.drain_blocking(buf).map(|_| ()).map_err(|_| ShardClosed),
            ShardInbox::Mpsc(rx) => match rx.recv() {
                Ok(cmd) => {
                    buf.push(cmd);
                    Ok(())
                }
                Err(_) => Err(ShardClosed),
            },
        }
    }

    /// Non-blocking sweep of everything currently enqueued (the shutdown
    /// drain). Returns how many commands were moved.
    fn drain_now(&mut self, buf: &mut Vec<ShardCmd>) -> usize {
        match self {
            ShardInbox::Ring(rx) => rx.drain_into(buf),
            ShardInbox::Mpsc(rx) => {
                let mut n = 0;
                while let Ok(cmd) = rx.try_recv() {
                    buf.push(cmd);
                    n += 1;
                }
                n
            }
        }
    }
}

/// A running shard thread.
pub(crate) struct ShardHandle {
    pub(crate) tx: ShardSender,
    pub(crate) join: JoinHandle<(SiteId, LogSet)>,
}

/// Spawn the shard thread for `site`, taking ownership of its queue
/// manager. `idx` is the shard's slot in the runtime's per-shard counter
/// table.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn(
    qm: QueueManager,
    idx: usize,
    inbox: ShardInbox,
    tx: ShardSender,
    registry: Arc<Registry>,
    stats: Arc<RuntimeStats>,
    plane: Arc<TracePlane>,
    clock: Arc<CommitClock>,
) -> ShardHandle {
    let site = qm.site();
    let join = std::thread::Builder::new()
        .name(format!("cc-shard-{}", site.0))
        .spawn(move || shard_loop(qm, idx, inbox, registry, stats, plane, clock))
        .expect("failed to spawn shard thread");
    ShardHandle { tx, join }
}

/// Per-iteration state the command dispatcher threads through.
struct ShardState<'a> {
    qm: QueueManager,
    logs: LogSet,
    /// The reusable engine sink: replies accumulate here across a whole
    /// drained batch and are flushed straight to the registry (no
    /// intermediate per-message `QmOutput`); events are folded into the
    /// stats and logs after each protocol command.
    sink: QmSink,
    stats: &'a RuntimeStats,
    /// The flight recorder; the shard records into lane `idx`. Events
    /// are aggregated per engine call (one `Granted` per fold) and per
    /// drained batch (one `ShardRecv`), all sharing one clock read, so
    /// the traced shard loop stays allocation-free and branch-cheap.
    plane: &'a TracePlane,
    /// The global commit clock: fast-path writes draw/retire their stamp
    /// here (shard-side — the apply is the whole commit), and each
    /// drained batch republishes the read watermark into the queue
    /// manager so version-chain pruning tracks it.
    clock: &'a CommitClock,
    idx: usize,
    shutdown: bool,
}

impl ShardState<'_> {
    fn count_msg(&self, msg: &RequestMsg) {
        if matches!(msg, RequestMsg::Abort { .. }) {
            self.stats.per_shard[self.idx]
                .aborts
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drain the events the last engine call pushed into the sink. Runs
    /// after *every* protocol command — a `LogSnapshot` later in the same
    /// drained batch must observe the operations implemented before it.
    /// Replies stay in the sink until the owning loop flushes them.
    fn fold_events(&mut self) {
        let counters = &self.stats.per_shard[self.idx];
        let mut granted = 0u32;
        let mut last_granted = 0u64;
        for event in self.sink.events.drain(..) {
            match event {
                QmEvent::GrantIssued { txn, class, .. } => {
                    self.stats.grants.fetch_add(1, Ordering::Relaxed);
                    counters.grants.fetch_add(1, Ordering::Relaxed);
                    if class == GrantClass::PreScheduled {
                        counters.prescheduled.fetch_add(1, Ordering::Relaxed);
                    }
                    granted += 1;
                    last_granted = txn.0;
                }
                QmEvent::Implemented {
                    item,
                    txn,
                    access,
                    commit_ts,
                } => {
                    self.logs.record_full(item, txn, access, commit_ts, false);
                    self.stats.implemented_ops.fetch_add(1, Ordering::Relaxed);
                    counters.implemented.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let dups = self.qm.take_dup_suppressed();
        if dups > 0 {
            self.stats.dup_suppressed.fetch_add(dups, Ordering::Relaxed);
        }
        // One aggregated trace event per engine call keeps the traced
        // shard overhead to a single clock read and ring write per fold.
        if granted > 0 {
            self.plane
                .record(self.idx, last_granted, Phase::Granted, granted);
        }
    }

    fn apply_cmd(&mut self, cmd: ShardCmd) {
        match cmd {
            ShardCmd::Handle { origin, msg } => {
                self.count_msg(&msg);
                self.qm.handle_into(origin, &msg, &mut self.sink);
                self.fold_events();
            }
            ShardCmd::HandleBatch { origin, msgs } => {
                for msg in msgs.iter() {
                    self.count_msg(msg);
                }
                self.qm.handle_batch(origin, msgs.iter(), &mut self.sink);
                self.fold_events();
            }
            ShardCmd::ApplyConfluent {
                origin,
                txn,
                ops,
                check,
                reply,
            } => {
                // A writing fast-path transaction commits inside this one
                // command, so its stamp is drawn and retired right here:
                // the draw happens before any install (a concurrent
                // watermark load either precedes it — and cannot serve
                // the new versions — or sees it in flight and stays
                // below), and the retire happens only after every install
                // has entered the log slice.
                let writes = ops.iter().any(|op| !matches!(op, ConfluentOp::Read(_)));
                let cts = if writes {
                    self.clock.draw()
                } else {
                    Timestamp::ZERO
                };
                let result = self
                    .qm
                    .apply_confluent(origin, txn, &ops, check, cts, &mut self.sink);
                // Implemented events must land in the log slice in the
                // shard's processing order, like every protocol command.
                self.fold_events();
                if writes {
                    self.clock.retire(cts);
                }
                reply.send(result)
            }
            ShardCmd::SnapshotRead {
                txn,
                ts,
                items,
                reply,
            } => {
                let mut out = Vec::with_capacity(items.len());
                if self.qm.snapshot_read_into(ts, &items, &mut out) {
                    let counters = &self.stats.per_shard[self.idx];
                    for &(item, _, served) in &out {
                        // Logged at the stamp of the version actually
                        // served — the oracle orders the read against
                        // writers by it, not by log position.
                        self.logs
                            .record_full(item, txn, AccessMode::Read, Some(served), true);
                        self.stats.implemented_ops.fetch_add(1, Ordering::Relaxed);
                        counters.implemented.fetch_add(1, Ordering::Relaxed);
                    }
                    reply.send(Some(
                        out.into_iter()
                            .map(|(item, value, _)| (item, value))
                            .collect(),
                    ))
                } else {
                    reply.send(None)
                }
            }
            ShardCmd::Crash { outage } => {
                // Unresponsive for the outage, then partial amnesia: the
                // ungranted tail of every queue is wiped. Lock removal may
                // re-grant survivors; those grants flow out like any
                // other replies/events.
                std::thread::sleep(outage);
                self.qm.crash_recover(&mut self.sink);
                self.fold_events();
                self.stats.shard_crashes.fetch_add(1, Ordering::Relaxed);
            }
            ShardCmd::PresentTxns(reply_to) => {
                let mut present = Vec::new();
                self.qm.present_txns_into(&mut present);
                reply_to.send(present)
            }
            ShardCmd::Cleanup(txns) => {
                let mut cleaned = 0u64;
                for txn in txns {
                    cleaned += self.qm.cleanup_txn(txn, &mut self.sink);
                }
                self.fold_events();
                if cleaned > 0 {
                    self.stats
                        .cleanup_aborts
                        .fetch_add(cleaned, Ordering::Relaxed);
                }
            }
            ShardCmd::WaitEdges(reply_to) => {
                let mut edges = Vec::new();
                self.qm.wait_edges_into(&mut edges);
                reply_to.send(edges)
            }
            ShardCmd::Waiting(reply_to) => {
                let mut waiting = Vec::new();
                self.qm.waiting_txns_into(&mut waiting);
                reply_to.send(waiting)
            }
            ShardCmd::LogSnapshot(reply_to) => reply_to.send(self.logs.clone()),
            ShardCmd::Shutdown => self.shutdown = true,
        }
    }
}

/// Record one `ShardRecv` per drained batch: the trace plane sees when
/// the shard woke and how many protocol commands the wakeup amortised,
/// at the cost of one clock read for the whole batch.
fn trace_batch(plane: &TracePlane, lane: usize, buf: &[ShardCmd]) {
    if plane.level() == TraceLevel::Off {
        return;
    }
    let mut txn = 0u64;
    let mut protocol_cmds = 0u32;
    for cmd in buf {
        let first = match cmd {
            ShardCmd::Handle { msg, .. } => Some(msg.txn().0),
            ShardCmd::HandleBatch { msgs, .. } => msgs.iter().next().map(|m| m.txn().0),
            ShardCmd::ApplyConfluent { txn, .. } => Some(txn.0),
            ShardCmd::SnapshotRead { txn, .. } => Some(txn.0),
            _ => None,
        };
        if let Some(first) = first {
            if protocol_cmds == 0 {
                txn = first;
            }
            protocol_cmds += 1;
        }
    }
    if protocol_cmds > 0 {
        plane.record(lane, txn, Phase::ShardRecv, protocol_cmds);
    }
}

fn shard_loop(
    qm: QueueManager,
    idx: usize,
    mut inbox: ShardInbox,
    registry: Arc<Registry>,
    stats: Arc<RuntimeStats>,
    plane: Arc<TracePlane>,
    clock: Arc<CommitClock>,
) -> (SiteId, LogSet) {
    let site = qm.site();
    let mut state = ShardState {
        qm,
        logs: LogSet::new(),
        // Pre-size to the drain buffer's depth so the first batches skip
        // the sink's warm-up growth.
        sink: QmSink::with_capacity(64, 64),
        stats: &stats,
        plane: &plane,
        clock: &clock,
        idx,
        shutdown: false,
    };
    let mut buf: Vec<ShardCmd> = Vec::with_capacity(64);
    // Retained grouping scratch for the reply flushes: the flush path
    // pays no allocation per drained batch.
    let mut reply_groups = Vec::with_capacity(16);
    // Exiting on a closed inbox (all senders dropped) covers the case of
    // a `Database` dropped without an explicit shutdown.
    loop {
        buf.clear();
        if inbox.next_batch(&mut buf).is_err() {
            break;
        }
        trace_batch(&plane, idx, &buf);
        // Republish the read watermark once per drained batch: pruning a
        // stale (lower) watermark only retains more versions, never
        // fewer, so a batch-granularity refresh is always safe.
        state.qm.set_watermark(clock.watermark());
        for cmd in buf.drain(..) {
            state.apply_cmd(cmd);
        }
        // Replies are flushed once per drained batch, straight from the
        // engine sink: one registry pass covers every reply the batch
        // produced, and — measured on a loaded single-CPU box — waking
        // waiters mid-batch lets them preempt the shard and roughly
        // halves throughput.
        if !state.sink.replies.is_empty() {
            registry.deliver_all_with(state.sink.replies.drain(..), &mut reply_groups);
        }
        if state.shutdown {
            // Drain-first shutdown: sweep and process everything already
            // enqueued (commands racing with the shutdown included) so no
            // committed write is dropped from the log.
            buf.clear();
            while inbox.drain_now(&mut buf) > 0 {
                trace_batch(&plane, idx, &buf);
                for cmd in buf.drain(..) {
                    state.apply_cmd(cmd);
                }
                buf.clear();
                if !state.sink.replies.is_empty() {
                    registry.deliver_all_with(state.sink.replies.drain(..), &mut reply_groups);
                }
            }
            break;
        }
    }
    (site, state.logs)
}

/// Build a connected sender/inbox pair for one shard on the given plane.
pub(crate) fn inbox_pair(
    transport: crate::config::TransportKind,
    capacity: usize,
) -> (ShardSender, ShardInbox) {
    match transport {
        crate::config::TransportKind::BatchedRing => {
            let (tx, rx) = transport::ring::channel(capacity.max(1));
            (ShardSender::Ring(tx), ShardInbox::Ring(rx))
        }
        crate::config::TransportKind::Mpsc => {
            let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
            (ShardSender::Mpsc(tx), ShardInbox::Mpsc(rx))
        }
    }
}

impl ShardSender {
    /// Non-blocking enqueue (used nowhere on the hot path; handy in
    /// tests). The command is dropped on failure.
    #[cfg(test)]
    pub(crate) fn try_send(&self, cmd: ShardCmd) -> Result<(), ()> {
        match self {
            ShardSender::Ring(tx) => tx.try_send(cmd).map(|_| ()).map_err(|_| ()),
            ShardSender::Mpsc(tx) => tx.try_send(cmd).map(|_| ()).map_err(|_| ()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ReplyPlaneKind, TransportKind};
    use crate::registry::ClientMailbox;
    use dbmodel::{
        AccessMode, CcMethod, LogicalItemId, PhysicalItemId, Timestamp, TsTuple, TxnId, Value,
    };
    use std::time::Duration;
    use unified_cc::EnforcementMode;

    fn item() -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(1), SiteId(0))
    }

    fn spawn_one(transport: TransportKind) -> (ShardHandle, Arc<Registry>, Arc<RuntimeStats>) {
        let mut qm = QueueManager::new(SiteId(0));
        qm.add_item(item(), 42, EnforcementMode::SemiLock);
        let registry = Arc::new(Registry::new(ReplyPlaneKind::Mailbox, 64));
        let stats = Arc::new(RuntimeStats::with_shards(1));
        let plane = Arc::new(TracePlane::new(&trace::TraceConfig::default(), 1));
        let (tx, rx) = inbox_pair(transport, 16);
        let handle = spawn(
            qm,
            0,
            rx,
            tx,
            Arc::clone(&registry),
            Arc::clone(&stats),
            plane,
            Arc::new(CommitClock::new()),
        );
        (handle, registry, stats)
    }

    fn expect_replies(mb: &mut ClientMailbox, txn: u64) {
        match mb.recv_timeout(TxnId(txn), Duration::from_secs(2)) {
            Ok(crate::registry::ClientEvent::Replies(_)) => {}
            other => panic!("expected replies, got {other:?}"),
        }
    }

    fn access(txn: u64, mode: AccessMode, ts: u64) -> RequestMsg {
        RequestMsg::Access {
            txn: TxnId(txn),
            item: item(),
            mode,
            method: CcMethod::TwoPhaseLocking,
            ts: TsTuple::new(Timestamp(ts), 10),
        }
    }

    fn release(txn: u64, value: Value) -> RequestMsg {
        RequestMsg::Release {
            txn: TxnId(txn),
            item: item(),
            write_value: Some(value),
            commit_ts: Timestamp::ZERO,
        }
    }

    #[test]
    fn shard_grants_logs_and_shuts_down() {
        for transport in [TransportKind::BatchedRing, TransportKind::Mpsc] {
            let (handle, registry, stats) = spawn_one(transport);
            let mut mb = registry.client_mailbox().expect("mailbox");
            registry.register(TxnId(1), CcMethod::TwoPhaseLocking, &mut mb);
            handle
                .tx
                .send(ShardCmd::Handle {
                    origin: SiteId(0),
                    msg: access(1, AccessMode::Write, 1),
                })
                .map_err(|_| ())
                .unwrap();
            // The grant is routed through the registry.
            expect_replies(&mut mb, 1);
            handle
                .tx
                .send(ShardCmd::Handle {
                    origin: SiteId(0),
                    msg: release(1, 7),
                })
                .map_err(|_| ())
                .unwrap();
            let (log_tx, log_rx) = transport::oneshot::channel();
            handle
                .tx
                .send(ShardCmd::LogSnapshot(log_tx))
                .map_err(|_| ())
                .unwrap();
            let logs = log_rx.recv().unwrap();
            assert_eq!(logs.total_ops(), 1);
            let _ = handle.tx.send(ShardCmd::Shutdown);
            let (site, logs) = handle.join.join().unwrap();
            assert_eq!(site, SiteId(0));
            assert_eq!(logs.total_ops(), 1);
            assert_eq!(stats.grants.load(Ordering::Relaxed), 1);
            assert_eq!(stats.implemented_ops.load(Ordering::Relaxed), 1);
            let shard0 = &stats.snapshot().per_shard[0];
            assert_eq!(shard0.grants, 1);
            assert_eq!(shard0.implemented, 1);
            assert_eq!(shard0.prescheduled, 0, "uncontended grant is normal");
            assert_eq!(shard0.aborts, 0);
        }
    }

    #[test]
    fn shard_exits_when_all_senders_drop() {
        for transport in [TransportKind::BatchedRing, TransportKind::Mpsc] {
            let (handle, _registry, _stats) = spawn_one(transport);
            drop(handle.tx);
            let (_, logs) = handle.join.join().unwrap();
            assert_eq!(logs.total_ops(), 0);
        }
    }

    #[test]
    fn handle_batch_applies_messages_in_order() {
        let (handle, registry, stats) = spawn_one(TransportKind::BatchedRing);
        let mut mb = registry.client_mailbox().expect("mailbox");
        registry.register(TxnId(1), CcMethod::TwoPhaseLocking, &mut mb);
        handle
            .tx
            .send(ShardCmd::HandleBatch {
                origin: SiteId(0),
                msgs: [access(1, AccessMode::Write, 1), release(1, 9)]
                    .into_iter()
                    .collect(),
            })
            .map_err(|_| ())
            .unwrap();
        expect_replies(&mut mb, 1);
        let _ = handle.tx.send(ShardCmd::Shutdown);
        let (_, logs) = handle.join.join().unwrap();
        assert_eq!(logs.total_ops(), 1, "access then release implemented");
        assert_eq!(stats.implemented_ops.load(Ordering::Relaxed), 1);
    }

    /// Regression (satellite 2): a `Shutdown` ordered *ahead of* enqueued
    /// `Handle`/`HandleBatch` commands from other senders must not abandon
    /// them — the shard drains the inbox before exiting. The inbox is
    /// pre-filled before the shard thread even starts, so on the ring
    /// plane the first wakeup drains one buffer shaped
    /// `[25 txns, Shutdown, 25 txns]`; a naive `break` on seeing
    /// `Shutdown` would drop every release behind it and lose committed
    /// writes from the final log.
    #[test]
    fn shutdown_drains_commands_enqueued_around_it() {
        for transport in [TransportKind::BatchedRing, TransportKind::Mpsc] {
            const TXNS: u64 = 50;
            let mut qm = QueueManager::new(SiteId(0));
            qm.add_item(item(), 42, EnforcementMode::SemiLock);
            let registry = Arc::new(Registry::new(ReplyPlaneKind::Mailbox, 64));
            let stats = Arc::new(RuntimeStats::with_shards(1));
            let (tx, inbox) = inbox_pair(transport, 128);
            for t in 1..=TXNS {
                tx.try_send(ShardCmd::HandleBatch {
                    origin: SiteId(0),
                    msgs: [access(t, AccessMode::Write, t), release(t, t as Value)]
                        .into_iter()
                        .collect(),
                })
                .map_err(|_| ())
                .unwrap();
                if t == TXNS / 2 {
                    // Another sender's shutdown lands mid-stream.
                    tx.try_send(ShardCmd::Shutdown).map_err(|_| ()).unwrap();
                }
            }
            let handle = spawn(
                qm,
                0,
                inbox,
                tx.clone(),
                Arc::clone(&registry),
                Arc::clone(&stats),
                Arc::new(TracePlane::new(&trace::TraceConfig::default(), 1)),
                Arc::new(CommitClock::new()),
            );
            let (_, logs) = handle.join.join().unwrap();
            assert_eq!(
                logs.total_ops(),
                TXNS as usize,
                "{transport:?}: every enqueued release must be implemented"
            );
            assert_eq!(stats.implemented_ops.load(Ordering::Relaxed), TXNS);
        }
    }
}
