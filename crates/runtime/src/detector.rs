//! The background deadlock detector.
//!
//! The runtime analogue of the simulator's periodic deadlock scan: every
//! `deadlock_scan_interval` the detector asks each shard for its current
//! wait-for edges, merges them into one [`WaitForGraph`], and — per the
//! paper's Corollary 2, which guarantees every deadlock cycle contains a
//! 2PL transaction — signals the youngest 2PL member of each cycle as a
//! victim through the registry. The victim's own client thread performs the
//! abort (it owns the request issuer), so the detector never touches
//! protocol state directly.
//!
//! Because the scan is a racy snapshot assembled from per-shard reports, a
//! reported "cycle" may have already dissolved by the time the victim reacts;
//! that is harmless — `RequestIssuer::abort_for_deadlock` refuses to abort an
//! incarnation that is no longer waiting.

//! The detector thread also runs the **stranded-transaction sweep**: under
//! fault injection (dropped aborts, late-delivered accesses, crash
//! amnesia) a shard can hold queue entries or locks for a transaction no
//! client will ever finish. Each scan collects every transaction present
//! at any shard and checks it against the registry; a transaction present
//! at a shard but registered nowhere is a *suspect*. A suspect seen on
//! two consecutive scans is cleaned up with [`ShardCmd::Cleanup`] (an
//! engine-level abort of its residual state). The two-scan grace guards
//! the deregister-vs-in-flight-release race: a committing client
//! deregisters before its releases are processed, but releases travel the
//! reliable channel and land within microseconds, far inside one scan
//! interval.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dbmodel::{CcMethod, TxnId};
use trace::{Phase, TracePlane};
use unified_cc::WaitForGraph;

use crate::registry::Registry;
use crate::shard::{ShardCmd, ShardSender};
use crate::stats::RuntimeStats;

/// How long the detector waits for one shard's edge report before skipping
/// it for this scan.
const EDGE_REPORT_TIMEOUT: Duration = Duration::from_millis(100);

/// Spawn the detector thread. It stops when `stop` receives a message or
/// all senders of `stop` are dropped.
pub(crate) fn spawn(
    shards: Vec<ShardSender>,
    registry: Arc<Registry>,
    stats: Arc<RuntimeStats>,
    plane: Arc<TracePlane>,
    interval: Duration,
    stop: Receiver<()>,
    stopped: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("cc-deadlock-detector".into())
        .spawn(move || {
            // Merged-edge scratch reused across scans (the shards build
            // their reports with `wait_edges_into`, so a scan's only
            // steady-state allocations are the per-shard report vectors
            // that cross the oneshot boundary).
            let mut edges: Vec<(TxnId, TxnId)> = Vec::new();
            // Suspects carried across scans (the two-scan grace).
            let mut suspects: HashSet<TxnId> = HashSet::new();
            loop {
                match stop.recv_timeout(interval) {
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                    Err(RecvTimeoutError::Timeout) => {}
                }
                if stopped.load(Ordering::Relaxed) {
                    return;
                }
                scan_once(&shards, &registry, &stats, &plane, &mut edges);
                sweep_stranded(&shards, &registry, &mut suspects);
            }
        })
        .expect("failed to spawn deadlock detector")
}

/// One scan: gather edges into the reusable `edges` scratch, find cycles,
/// signal victims. The scratch is left cleared with its capacity intact.
pub(crate) fn scan_once(
    shards: &[ShardSender],
    registry: &Registry,
    stats: &RuntimeStats,
    plane: &TracePlane,
    edges: &mut Vec<(TxnId, TxnId)>,
) {
    debug_assert!(edges.is_empty());
    for shard in shards {
        let (tx, rx) = transport::oneshot::channel();
        if shard.send(ShardCmd::WaitEdges(tx)).is_err() {
            continue; // shard already shut down
        }
        match rx.recv_timeout(EDGE_REPORT_TIMEOUT) {
            Ok(shard_edges) => edges.extend(shard_edges),
            Err(_) => continue, // slow or shut-down shard: skip this scan
        }
    }
    if edges.is_empty() {
        return;
    }
    let graph = WaitForGraph::from_edges(edges.drain(..));
    let victims =
        graph.choose_victims(|txn| registry.method_of(txn) == Some(CcMethod::TwoPhaseLocking));
    for victim in victims {
        if registry.signal_deadlock(victim) {
            stats.deadlock_victims.fetch_add(1, Ordering::Relaxed);
            plane.record(plane.client_lane(), victim.0, Phase::Victim, 0);
            // The first victim latches the flight-recorder postmortem (a
            // no-op unless a dump directory is configured).
            let _ = plane.trigger_postmortem("deadlock-victim");
        }
    }
}

/// One stranded-transaction sweep (see the module docs): collect every
/// transaction present at each shard, suspect those registered nowhere,
/// and clean up suspects already seen on the previous sweep. `suspects`
/// is the grace set carried between sweeps.
pub(crate) fn sweep_stranded(
    shards: &[ShardSender],
    registry: &Registry,
    suspects: &mut HashSet<TxnId>,
) {
    let mut next_suspects: HashSet<TxnId> = HashSet::new();
    for shard in shards {
        let (tx, rx) = transport::oneshot::channel();
        if shard.send(ShardCmd::PresentTxns(tx)).is_err() {
            continue;
        }
        let present = match rx.recv_timeout(EDGE_REPORT_TIMEOUT) {
            Ok(present) => present,
            Err(_) => continue, // mid-outage or shut down: next sweep
        };
        let mut confirmed = Vec::new();
        for txn in present {
            if registry.method_of(txn).is_some() {
                continue; // live somewhere — not stranded
            }
            if suspects.contains(&txn) {
                confirmed.push(txn);
            } else {
                next_suspects.insert(txn);
            }
        }
        if !confirmed.is_empty() {
            let _ = shard.send(ShardCmd::Cleanup(confirmed));
        }
    }
    *suspects = next_suspects;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ReplyPlaneKind, TransportKind};
    use crate::registry::{ClientEvent, ClientMailbox};
    use crate::shard::{inbox_pair, ShardCmd, ShardHandle};
    use dbmodel::{AccessMode, LogicalItemId, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId};
    use pam::RequestMsg;
    use std::time::Duration;
    use unified_cc::{EnforcementMode, QueueManager};

    fn item(i: u64, site: u32) -> PhysicalItemId {
        PhysicalItemId::new(LogicalItemId(i), SiteId(site))
    }

    fn spawn_shard(
        site: u32,
        idx: usize,
        it: PhysicalItemId,
        registry: &Arc<Registry>,
        stats: &Arc<RuntimeStats>,
    ) -> ShardHandle {
        let mut qm = QueueManager::new(SiteId(site));
        qm.add_item(it, 0, EnforcementMode::SemiLock);
        let (tx, rx) = inbox_pair(TransportKind::BatchedRing, 16);
        crate::shard::spawn(
            qm,
            idx,
            rx,
            tx,
            Arc::clone(registry),
            Arc::clone(stats),
            Arc::new(TracePlane::new(&trace::TraceConfig::default(), 2)),
            Arc::new(crate::clock::CommitClock::new()),
        )
    }

    fn test_plane() -> TracePlane {
        TracePlane::new(&trace::TraceConfig::default(), 2)
    }

    fn access(txn: u64, it: PhysicalItemId, method: CcMethod, ts: u64) -> ShardCmd {
        ShardCmd::Handle {
            origin: SiteId(0),
            msg: RequestMsg::Access {
                txn: TxnId(txn),
                item: it,
                mode: AccessMode::Write,
                method,
                ts: TsTuple::new(Timestamp(ts), 10),
            },
        }
    }

    fn expect_grant(mb: &mut ClientMailbox, txn: TxnId) {
        match mb.recv_timeout(txn, Duration::from_secs(2)) {
            Ok(ClientEvent::Replies(batch))
                if matches!(batch.iter().next(), Some(pam::ReplyMsg::Grant { .. })) => {}
            other => panic!("expected a grant, got {other:?}"),
        }
    }

    /// Block until `shard` reports `txn` queued without a grant.
    fn wait_until_waiting(shard: &ShardSender, txn: TxnId) {
        for _ in 0..200 {
            let (tx, rx) = transport::oneshot::channel();
            shard
                .send(ShardCmd::Waiting(tx))
                .map_err(|_| ())
                .expect("shard alive");
            if rx
                .recv_timeout(Duration::from_secs(2))
                .expect("shard replies")
                .contains(&txn)
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("transaction {txn:?} never queued at the shard");
    }

    /// Inject a genuine wait cycle through the real shard machinery — two
    /// 2PL writers holding one item each and queued behind the other's —
    /// and check a single scan victimises exactly the *youngest* 2PL
    /// member (Corollary 2's victim rule as the detector implements it).
    #[test]
    fn injected_cycle_victimises_the_youngest_2pl_member() {
        // Both reply planes must carry the victim signal identically.
        for plane in [ReplyPlaneKind::Mailbox, ReplyPlaneKind::Mpsc] {
            let registry = Arc::new(Registry::new(plane, 64));
            let stats = Arc::new(RuntimeStats::with_shards(2));
            let a = item(0, 0);
            let b = item(1, 1);
            let shard0 = spawn_shard(0, 0, a, &registry, &stats);
            let shard1 = spawn_shard(1, 1, b, &registry, &stats);
            let shards = vec![shard0.tx.clone(), shard1.tx.clone()];

            let mut mb1 = registry.client_mailbox().expect("mailbox");
            let mut mb2 = registry.client_mailbox().expect("mailbox");
            registry.register(TxnId(1), CcMethod::TwoPhaseLocking, &mut mb1);
            registry.register(TxnId(2), CcMethod::TwoPhaseLocking, &mut mb2);

            // T1 locks a, T2 locks b.
            shard0
                .tx
                .send(access(1, a, CcMethod::TwoPhaseLocking, 1))
                .unwrap();
            shard1
                .tx
                .send(access(2, b, CcMethod::TwoPhaseLocking, 2))
                .unwrap();
            expect_grant(&mut mb1, TxnId(1));
            expect_grant(&mut mb2, TxnId(2));
            // Cross requests: T1 waits for b (held by T2), T2 waits for a
            // (held by T1) — a genuine deadlock.
            shard1
                .tx
                .send(access(1, b, CcMethod::TwoPhaseLocking, 1))
                .unwrap();
            shard0
                .tx
                .send(access(2, a, CcMethod::TwoPhaseLocking, 2))
                .unwrap();
            wait_until_waiting(&shard1.tx, TxnId(1));
            wait_until_waiting(&shard0.tx, TxnId(2));

            let tracer = test_plane();
            scan_once(&shards, &registry, &stats, &tracer, &mut Vec::new());
            assert_eq!(
                tracer.phase_counts()[Phase::Victim as usize],
                1,
                "{plane:?}: the victim signal must be traced"
            );

            // The youngest 2PL member (the larger TxnId) is the victim …
            match mb2.recv_timeout(TxnId(2), Duration::from_secs(2)) {
                Ok(ClientEvent::DeadlockVictim) => {}
                other => panic!("{plane:?}: expected T2 to be the victim, got {other:?}"),
            }
            // … and the older one is left alone.
            assert!(
                mb1.recv_timeout(TxnId(1), Duration::from_millis(50))
                    .is_err(),
                "{plane:?}: the older transaction must not be signalled"
            );
            assert_eq!(stats.deadlock_victims.load(Ordering::Relaxed), 1);

            drop(shards);
            let _ = shard0.tx.send(ShardCmd::Shutdown);
            let _ = shard1.tx.send(ShardCmd::Shutdown);
            let _ = shard0.join.join();
            let _ = shard1.join.join();
        }
    }

    /// With a T/O transaction in the cycle, the victim is still the 2PL
    /// member — even when the T/O transaction is younger.
    #[test]
    fn to_member_of_a_cycle_is_never_the_victim() {
        let registry = Arc::new(Registry::new(ReplyPlaneKind::Mailbox, 64));
        let stats = Arc::new(RuntimeStats::with_shards(2));
        let a = item(0, 0);
        let b = item(1, 1);
        let shard0 = spawn_shard(0, 0, a, &registry, &stats);
        let shard1 = spawn_shard(1, 1, b, &registry, &stats);
        let shards = vec![shard0.tx.clone(), shard1.tx.clone()];

        let mut mb1 = registry.client_mailbox().expect("mailbox");
        let mut mb3 = registry.client_mailbox().expect("mailbox");
        registry.register(TxnId(1), CcMethod::TwoPhaseLocking, &mut mb1);
        registry.register(TxnId(3), CcMethod::TimestampOrdering, &mut mb3);

        // 2PL T1 locks a; T/O T3 locks b (fresh thresholds accept ts 3).
        shard0
            .tx
            .send(access(1, a, CcMethod::TwoPhaseLocking, 1))
            .unwrap();
        shard1
            .tx
            .send(access(3, b, CcMethod::TimestampOrdering, 3))
            .unwrap();
        expect_grant(&mut mb1, TxnId(1));
        expect_grant(&mut mb3, TxnId(3));
        shard1
            .tx
            .send(access(1, b, CcMethod::TwoPhaseLocking, 1))
            .unwrap();
        shard0
            .tx
            .send(access(3, a, CcMethod::TimestampOrdering, 3))
            .unwrap();
        wait_until_waiting(&shard1.tx, TxnId(1));
        wait_until_waiting(&shard0.tx, TxnId(3));

        scan_once(&shards, &registry, &stats, &test_plane(), &mut Vec::new());

        match mb1.recv_timeout(TxnId(1), Duration::from_secs(2)) {
            Ok(ClientEvent::DeadlockVictim) => {}
            other => panic!("expected the 2PL member to be the victim, got {other:?}"),
        }
        assert!(
            mb3.recv_timeout(TxnId(3), Duration::from_millis(50))
                .is_err(),
            "T/O transactions are never deadlock victims (Corollary 2)"
        );

        drop(shards);
        let _ = shard0.tx.send(ShardCmd::Shutdown);
        let _ = shard1.tx.send(ShardCmd::Shutdown);
        let _ = shard0.join.join();
        let _ = shard1.join.join();
    }

    /// The stranded-transaction sweep: a lock held by a transaction that
    /// is registered nowhere survives the first sweep (grace) and is
    /// cleaned on the second, unblocking the registered waiter queued
    /// behind it.
    #[test]
    fn stranded_lock_is_cleaned_after_two_sweeps() {
        let registry = Arc::new(Registry::new(ReplyPlaneKind::Mailbox, 64));
        let stats = Arc::new(RuntimeStats::with_shards(1));
        let a = item(0, 0);
        let shard = spawn_shard(0, 0, a, &registry, &stats);
        let shards = vec![shard.tx.clone()];

        // T9 takes the write lock but is never registered — the ghost a
        // dropped Abort or a crashed client leaves behind. T1 is a live,
        // registered transaction stuck behind it.
        let mut mb1 = registry.client_mailbox().expect("mailbox");
        registry.register(TxnId(1), CcMethod::TwoPhaseLocking, &mut mb1);
        shard
            .tx
            .send(access(9, a, CcMethod::TwoPhaseLocking, 9))
            .unwrap();
        shard
            .tx
            .send(access(1, a, CcMethod::TwoPhaseLocking, 1))
            .unwrap();
        wait_until_waiting(&shard.tx, TxnId(1));

        let mut suspects = HashSet::new();
        sweep_stranded(&shards, &registry, &mut suspects);
        assert!(
            suspects.contains(&TxnId(9)),
            "first sweep only suspects the ghost"
        );
        assert!(
            mb1.recv_timeout(TxnId(1), Duration::from_millis(20))
                .is_err(),
            "grace: nothing cleaned on the first sweep"
        );
        sweep_stranded(&shards, &registry, &mut suspects);
        // The cleanup aborts T9's residual state and the freed lock
        // grants T1.
        expect_grant(&mut mb1, TxnId(1));
        assert!(!suspects.contains(&TxnId(9)), "cleaned, no longer suspect");

        drop(shards);
        let _ = shard.tx.send(ShardCmd::Shutdown);
        let _ = shard.join.join();
    }
}
