//! The background deadlock detector.
//!
//! The runtime analogue of the simulator's periodic deadlock scan: every
//! `deadlock_scan_interval` the detector asks each shard for its current
//! wait-for edges, merges them into one [`WaitForGraph`], and — per the
//! paper's Corollary 2, which guarantees every deadlock cycle contains a
//! 2PL transaction — signals the youngest 2PL member of each cycle as a
//! victim through the registry. The victim's own client thread performs the
//! abort (it owns the request issuer), so the detector never touches
//! protocol state directly.
//!
//! Because the scan is a racy snapshot assembled from per-shard reports, a
//! reported "cycle" may have already dissolved by the time the victim reacts;
//! that is harmless — `RequestIssuer::abort_for_deadlock` refuses to abort an
//! incarnation that is no longer waiting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dbmodel::{CcMethod, TxnId};
use unified_cc::WaitForGraph;

use crate::registry::Registry;
use crate::shard::ShardCmd;
use crate::stats::RuntimeStats;

/// How long the detector waits for one shard's edge report before skipping
/// it for this scan.
const EDGE_REPORT_TIMEOUT: Duration = Duration::from_millis(100);

/// Spawn the detector thread. It stops when `stop` receives a message or
/// all senders of `stop` are dropped.
pub(crate) fn spawn(
    shards: Vec<SyncSender<ShardCmd>>,
    registry: Arc<Registry>,
    stats: Arc<RuntimeStats>,
    interval: Duration,
    stop: Receiver<()>,
    stopped: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("cc-deadlock-detector".into())
        .spawn(move || loop {
            match stop.recv_timeout(interval) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
            if stopped.load(Ordering::Relaxed) {
                return;
            }
            scan_once(&shards, &registry, &stats);
        })
        .expect("failed to spawn deadlock detector")
}

/// One scan: gather edges, find cycles, signal victims.
pub(crate) fn scan_once(
    shards: &[SyncSender<ShardCmd>],
    registry: &Registry,
    stats: &RuntimeStats,
) {
    let mut edges: Vec<(TxnId, TxnId)> = Vec::new();
    for shard in shards {
        let (tx, rx) = mpsc::channel();
        if shard.send(ShardCmd::WaitEdges(tx)).is_err() {
            continue; // shard already shut down
        }
        match rx.recv_timeout(EDGE_REPORT_TIMEOUT) {
            Ok(shard_edges) => edges.extend(shard_edges),
            Err(_) => continue, // slow shard: skip this scan
        }
    }
    if edges.is_empty() {
        return;
    }
    let graph = WaitForGraph::from_edges(edges);
    let victims =
        graph.choose_victims(|txn| registry.method_of(txn) == Some(CcMethod::TwoPhaseLocking));
    for victim in victims {
        if registry.signal_deadlock(victim) {
            stats.deadlock_victims.fetch_add(1, Ordering::Relaxed);
        }
    }
}
