//! The committed-timestamp clock and its global read watermark.
//!
//! Every transaction that implements a write draws a commit stamp from
//! this clock *before* its releases/demotes are routed, and retires it
//! once the implementation is acknowledged. The **watermark** is the
//! largest stamp `w` such that every write stamped `≤ w` is fully
//! installed: a snapshot read served at `w` can therefore never observe a
//! half-implemented transaction, no matter how many writers are in
//! flight.
//!
//! Concretely the watermark is `min(inflight) - 1` while any stamp is
//! outstanding, and the last issued stamp otherwise. A commit whose
//! acknowledgement never arrives (a dead shard past the bounded commit
//! wait) deliberately stays in flight forever: the watermark stalls and
//! snapshot reads keep serving the last provably consistent prefix —
//! stale but never torn — until version chains hit their hard cap and
//! refuse, pushing readers onto the coordinated path.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dbmodel::Timestamp;

#[derive(Default)]
struct ClockState {
    /// Stamps drawn but not yet retired, ordered (the minimum bounds the
    /// watermark).
    inflight: BTreeSet<u64>,
    /// The last stamp handed out; the watermark when nothing is in
    /// flight.
    last_issued: u64,
}

/// The global commit clock: a draw/retire counter plus the derived read
/// watermark, shared by every client thread and every shard.
#[derive(Default)]
pub(crate) struct CommitClock {
    state: Mutex<ClockState>,
    /// The published watermark — the fast path for readers (one relaxed
    /// load; only `draw`/`retire` take the mutex).
    watermark: AtomicU64,
}

impl CommitClock {
    pub(crate) fn new() -> CommitClock {
        CommitClock::default()
    }

    /// Draw the next commit stamp and mark it in flight. Stamps start at
    /// 1; [`Timestamp::ZERO`] stays the "unstamped" sentinel.
    pub(crate) fn draw(&self) -> Timestamp {
        let mut state = self.state.lock().expect("commit clock poisoned");
        state.last_issued += 1;
        let ts = state.last_issued;
        state.inflight.insert(ts);
        // A freshly drawn stamp is always above the watermark, so the
        // published value never moves here — but recompute anyway so the
        // invariant lives in one place.
        self.publish(&state);
        Timestamp(ts)
    }

    /// Retire a stamp: its write is fully installed. Advances the
    /// watermark past every prefix of retired stamps.
    pub(crate) fn retire(&self, ts: Timestamp) {
        let mut state = self.state.lock().expect("commit clock poisoned");
        state.inflight.remove(&ts.0);
        self.publish(&state);
    }

    /// The largest stamp every write at or below which is fully
    /// installed.
    pub(crate) fn watermark(&self) -> Timestamp {
        Timestamp(self.watermark.load(Ordering::Acquire))
    }

    fn publish(&self, state: &ClockState) {
        let w = state
            .inflight
            .first()
            .map(|&m| m - 1)
            .unwrap_or(state.last_issued);
        self.watermark.store(w, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_tracks_the_retired_prefix() {
        let clock = CommitClock::new();
        assert_eq!(clock.watermark(), Timestamp::ZERO);
        let a = clock.draw();
        let b = clock.draw();
        let c = clock.draw();
        assert_eq!((a, b, c), (Timestamp(1), Timestamp(2), Timestamp(3)));
        assert_eq!(clock.watermark(), Timestamp::ZERO, "all three in flight");
        clock.retire(b);
        assert_eq!(clock.watermark(), Timestamp::ZERO, "a still blocks");
        clock.retire(a);
        assert_eq!(clock.watermark(), Timestamp(2), "prefix {{1,2}} retired");
        clock.retire(c);
        assert_eq!(clock.watermark(), Timestamp(3), "nothing in flight");
    }

    #[test]
    fn an_unretired_stamp_stalls_the_watermark_forever() {
        let clock = CommitClock::new();
        let stuck = clock.draw();
        for _ in 0..100 {
            let ts = clock.draw();
            clock.retire(ts);
        }
        assert_eq!(clock.watermark(), Timestamp(stuck.0 - 1));
        clock.retire(stuck);
        assert_eq!(clock.watermark(), Timestamp(101));
    }

    #[test]
    fn concurrent_draw_retire_keeps_the_watermark_safe() {
        use std::sync::Arc;
        let clock = Arc::new(CommitClock::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let ts = clock.draw();
                        // The watermark must never reach an in-flight
                        // stamp.
                        assert!(clock.watermark() < ts);
                        clock.retire(ts);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(clock.watermark(), Timestamp(2000));
    }
}
