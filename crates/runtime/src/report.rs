//! The final report of a runtime session.

use std::collections::BTreeMap;

use dbmodel::{CcMethod, LogSet, TxnId};
use metrics::SimMetrics;
use sercheck::SerializabilityError;

use crate::stats::StatsSnapshot;

/// Everything a drained [`crate::Database`] leaves behind: the merged
/// execution log (the input of the serializability oracle), the runtime
/// counters, the method-level metrics and the selection census.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Per-item implementation logs merged across shards.
    pub logs: LogSet,
    /// The runtime counters at shutdown.
    pub stats: StatsSnapshot,
    /// Method-level metrics (commits, restarts, denial rates, …) collected
    /// for the STL selector.
    pub metrics: SimMetrics,
    /// How many transactions each method was assigned.
    pub selection_counts: BTreeMap<CcMethod, u64>,
    /// The Section-5 phase breakdown from the tracing plane (`None` when
    /// the database ran with [`trace::TraceLevel::Off`]).
    pub trace: Option<trace::TraceReport>,
}

impl RuntimeReport {
    /// Replay the captured execution log through the serializability
    /// oracle: returns a valid serialization order, or the offending cycle.
    pub fn serializable(&self) -> Result<Vec<TxnId>, SerializabilityError> {
        sercheck::check_serializable(&self.logs)
    }

    /// Committed transactions per wall-clock second.
    pub fn commit_throughput(&self) -> f64 {
        self.metrics.commit_throughput()
    }
}
