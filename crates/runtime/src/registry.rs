//! The live-transaction registry: the runtime's reply router.
//!
//! Shards and the deadlock detector address transactions by [`TxnId`]; the
//! registry maps each live incarnation to the (unbounded) event channel its
//! client thread is blocked on. Entries are registered when an incarnation
//! starts and removed when it commits, aborts or restarts; events addressed
//! to an unknown transaction are dropped, which is exactly the "stale reply
//! for an aborted incarnation" rule the simulator implements.

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::Mutex;

use dbmodel::{CcMethod, TxnId};
use pam::ReplyMsg;

/// An event delivered to the client thread driving one incarnation.
#[derive(Debug)]
pub(crate) enum ClientEvent {
    /// A queue-manager reply.
    Reply(ReplyMsg),
    /// The deadlock detector chose this incarnation as a victim.
    DeadlockVictim,
}

struct Entry {
    sender: Sender<ClientEvent>,
    method: CcMethod,
}

/// Shared map of live incarnations.
#[derive(Default)]
pub(crate) struct Registry {
    inner: Mutex<HashMap<TxnId, Entry>>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry::default()
    }

    /// Register a new incarnation.
    pub(crate) fn register(&self, txn: TxnId, method: CcMethod, sender: Sender<ClientEvent>) {
        let mut map = self.inner.lock().expect("registry poisoned");
        let prev = map.insert(txn, Entry { sender, method });
        debug_assert!(prev.is_none(), "transaction id {txn} reused while live");
    }

    /// Remove an incarnation (commit, abort or restart).
    pub(crate) fn deregister(&self, txn: TxnId) {
        self.inner.lock().expect("registry poisoned").remove(&txn);
    }

    /// Number of live incarnations.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("registry poisoned").len()
    }

    /// Deliver a queue-manager reply to its incarnation; drops the reply if
    /// the incarnation is gone (stale message).
    pub(crate) fn deliver(&self, reply: ReplyMsg) {
        let map = self.inner.lock().expect("registry poisoned");
        if let Some(entry) = map.get(&reply.txn()) {
            // A send error means the client hung up between deregistering
            // and dropping the receiver; equivalent to a stale reply.
            let _ = entry.sender.send(ClientEvent::Reply(reply));
        }
    }

    /// The method a live incarnation runs under.
    pub(crate) fn method_of(&self, txn: TxnId) -> Option<CcMethod> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .get(&txn)
            .map(|e| e.method)
    }

    /// Signal a deadlock victim. Returns true if the incarnation was live.
    pub(crate) fn signal_deadlock(&self, txn: TxnId) -> bool {
        let map = self.inner.lock().expect("registry poisoned");
        match map.get(&txn) {
            Some(entry) => entry.sender.send(ClientEvent::DeadlockVictim).is_ok(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{LogicalItemId, PhysicalItemId, SiteId};
    use std::sync::mpsc;

    fn reply(txn: u64) -> ReplyMsg {
        ReplyMsg::Ack {
            txn: TxnId(txn),
            item: PhysicalItemId::new(LogicalItemId(1), SiteId(0)),
        }
    }

    #[test]
    fn delivers_to_registered_and_drops_unknown() {
        let registry = Registry::new();
        let (tx, rx) = mpsc::channel();
        registry.register(TxnId(1), CcMethod::TwoPhaseLocking, tx);
        assert_eq!(registry.len(), 1);
        registry.deliver(reply(1));
        registry.deliver(reply(2)); // unknown: dropped silently
        assert!(matches!(rx.try_recv(), Ok(ClientEvent::Reply(_))));
        assert!(rx.try_recv().is_err());
        registry.deregister(TxnId(1));
        assert_eq!(registry.len(), 0);
        registry.deliver(reply(1)); // now stale: dropped
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn deadlock_signal_reaches_live_victims_only() {
        let registry = Registry::new();
        let (tx, rx) = mpsc::channel();
        registry.register(TxnId(7), CcMethod::TwoPhaseLocking, tx);
        assert_eq!(
            registry.method_of(TxnId(7)),
            Some(CcMethod::TwoPhaseLocking)
        );
        assert_eq!(registry.method_of(TxnId(8)), None);
        assert!(registry.signal_deadlock(TxnId(7)));
        assert!(!registry.signal_deadlock(TxnId(8)));
        assert!(matches!(rx.try_recv(), Ok(ClientEvent::DeadlockVictim)));
    }
}
