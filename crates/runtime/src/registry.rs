//! The live-transaction registry: the runtime's reply router.
//!
//! Shards and the deadlock detector address transactions by [`TxnId`];
//! the registry routes each event to the client thread driving that
//! incarnation. Entries are registered when an incarnation starts and
//! removed when it commits, aborts or restarts; events addressed to an
//! unknown — or no-longer-current — transaction are dropped, which is
//! exactly the "stale reply for an aborted incarnation" rule the
//! simulator implements.
//!
//! Two reply planes exist (see [`crate::config::ReplyPlaneKind`]):
//!
//! * **Mailbox** (default) — the lock-free plane. Every client holds a
//!   reusable [`transport::mailbox::Mailbox`] acquired once per
//!   transaction from the shared slab and re-registered across restart
//!   incarnations; delivery resolves `TxnId → (mailbox slot, tag)`
//!   through the slab's packed atomic index — no registry mutex, no
//!   channel allocation, no reply-path lock at all. The incarnation tag
//!   is the transaction id itself (ids are a monotone counter, never
//!   reused), carried inside every event and checked by the consumer, so
//!   a delivery racing a restart can never leak a stale grant into the
//!   next incarnation.
//! * **Mpsc** — the PR-3 baseline kept for A/B comparison: a global
//!   `Mutex<HashMap>` of per-incarnation `std::sync::mpsc` senders, one
//!   freshly allocated channel per incarnation.
//!
//! On both planes [`Registry::deliver_all`] groups **all** of a
//! transaction's replies in one flush into a single [`ClientEvent`] —
//! not merely consecutive runs. A shard's drained batch can interleave
//! several transactions' replies (two clients' `HandleBatch` commands
//! alternating in one drain), and the earlier consecutive-run coalescing
//! woke the same client once per run; the registry now guarantees *one
//! wakeup per transaction per flush*, with the transaction's replies in
//! processing order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Duration;

use dbmodel::{CcMethod, TxnId};
use pam::ReplyMsg;
use transport::batch::SmallBatch;
use transport::mailbox::{Mailbox, MailboxOptions, MailboxRegistry, SlabExhausted};

use crate::config::ReplyPlaneKind;

/// An event delivered to the client thread driving one incarnation.
// The variant size gap is deliberate: reply batches travel inline so no
// heap allocation crosses the shard→client boundary, and the victim
// signal is rare enough that padding it costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum ClientEvent {
    /// One or more queue-manager replies for this incarnation, in
    /// processing order. A shard's batch flush groups every reply a
    /// transaction earned in one drained batch (e.g. all grants of a
    /// multi-item access phase at that shard) into a single event, so
    /// the waiting client is woken once per shard per flush, not once
    /// per item.
    Replies(SmallBatch<ReplyMsg>),
    /// The deadlock detector chose this incarnation as a victim.
    DeadlockVictim,
}

/// The per-client reply endpoint, plane-matched to the registry that
/// issued it. Acquired once per transaction and reused across its
/// restart incarnations; [`Registry::register`] re-arms it for each
/// incarnation.
pub(crate) enum ClientMailbox {
    /// A reusable slab mailbox (no allocation per incarnation).
    Mailbox(Mailbox<ClientEvent>),
    /// The baseline: `register` installs a fresh per-incarnation
    /// receiver here.
    Mpsc(Option<Receiver<ClientEvent>>),
}

/// Why [`ClientMailbox::recv_timeout`] returned no event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClientRecvError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// The sending side is gone (mpsc plane only — the mailbox plane's
    /// slab always holds a sender and reports shutdown via timeouts).
    Disconnected,
}

impl ClientMailbox {
    /// Block up to `timeout` for the next event addressed to `txn`.
    /// On the mailbox plane, events tagged for earlier incarnations of
    /// this slot are discarded here — the consumer half of the
    /// stale-reply rule.
    pub(crate) fn recv_timeout(
        &mut self,
        txn: TxnId,
        timeout: Duration,
    ) -> Result<ClientEvent, ClientRecvError> {
        match self {
            ClientMailbox::Mailbox(mb) => mb
                .recv_timeout(txn.0, timeout)
                .ok_or(ClientRecvError::Timeout),
            ClientMailbox::Mpsc(rx) => rx
                .as_ref()
                .expect("mpsc mailbox used before registration")
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    RecvTimeoutError::Timeout => ClientRecvError::Timeout,
                    RecvTimeoutError::Disconnected => ClientRecvError::Disconnected,
                }),
        }
    }
}

struct MpscEntry {
    sender: Sender<ClientEvent>,
    method: CcMethod,
}

struct MpscPlane {
    inner: Mutex<HashMap<TxnId, MpscEntry>>,
}

enum Plane {
    Mailbox(MailboxRegistry<ClientEvent>),
    Mpsc(MpscPlane),
}

/// Shared router of live incarnations (see the module docs).
pub(crate) struct Registry {
    plane: Plane,
    /// Events dropped at delivery time because no live incarnation
    /// matched — the producer half of the stale-reply rule.
    dropped: AtomicU64,
}

/// `CcMethod` packed into the mailbox slab's registration metadata so
/// the deadlock detector's `method_of` resolves without any map.
fn method_meta(method: CcMethod) -> u64 {
    match method {
        CcMethod::TwoPhaseLocking => 1,
        CcMethod::TimestampOrdering => 2,
        CcMethod::PrecedenceAgreement => 3,
    }
}

fn meta_method(meta: u64) -> Option<CcMethod> {
    match meta {
        1 => Some(CcMethod::TwoPhaseLocking),
        2 => Some(CcMethod::TimestampOrdering),
        3 => Some(CcMethod::PrecedenceAgreement),
        _ => None,
    }
}

impl Registry {
    /// A registry on the given plane with default sizing except
    /// `mailbox_capacity` — the shape the tests use. The runtime builds
    /// its registry through [`Registry::with_options`] from
    /// [`crate::RuntimeConfig`].
    #[cfg(test)]
    pub(crate) fn new(kind: ReplyPlaneKind, mailbox_capacity: usize) -> Self {
        Registry::with_options(
            kind,
            MailboxOptions {
                mailbox_capacity,
                ..MailboxOptions::default()
            },
        )
    }

    /// A registry on the given plane. `opts` sizes the mailbox slab and
    /// its resizable index (mailbox plane only — the mpsc baseline has
    /// no tuning): `mailbox_capacity` must exceed the replies one
    /// incarnation can have outstanding while its client is between
    /// drains, or delivering shards briefly yield.
    pub(crate) fn with_options(kind: ReplyPlaneKind, opts: MailboxOptions) -> Self {
        let plane = match kind {
            ReplyPlaneKind::Mailbox => Plane::Mailbox(MailboxRegistry::with_options(opts)),
            ReplyPlaneKind::Mpsc => Plane::Mpsc(MpscPlane {
                inner: Mutex::new(HashMap::new()),
            }),
        };
        Registry {
            plane,
            dropped: AtomicU64::new(0),
        }
    }

    /// Hand out the reply endpoint a client thread drives one
    /// transaction (all its incarnations) through. On the mailbox plane
    /// this pops a reusable slab slot — and fails with [`SlabExhausted`]
    /// when all `max_clients` mailboxes stay held past the acquire
    /// timeout; on the mpsc plane it is an empty shell filled per
    /// incarnation by [`Registry::register`].
    pub(crate) fn client_mailbox(&self) -> Result<ClientMailbox, SlabExhausted> {
        match &self.plane {
            Plane::Mailbox(reg) => reg.acquire().map(ClientMailbox::Mailbox),
            Plane::Mpsc(_) => Ok(ClientMailbox::Mpsc(None)),
        }
    }

    /// Register a new incarnation on `mailbox`. Must complete before the
    /// incarnation's first request message is routed (the callers do:
    /// register, then `RequestIssuer::start`, then route).
    ///
    /// Returns `true` when the registration fell off the lock-free path
    /// onto the mailbox slab's overflow map (index at its growth ceiling
    /// with a live bucket collision) — the transition the caller reports
    /// via the trace plane. Always `false` on the mpsc plane.
    pub(crate) fn register(
        &self,
        txn: TxnId,
        method: CcMethod,
        mailbox: &mut ClientMailbox,
    ) -> bool {
        match (&self.plane, mailbox) {
            (Plane::Mailbox(reg), ClientMailbox::Mailbox(mb)) => {
                reg.register(txn.0, method_meta(method), mb)
            }
            (Plane::Mpsc(plane), ClientMailbox::Mpsc(slot)) => {
                let (tx, rx) = mpsc::channel();
                let prev = plane
                    .inner
                    .lock()
                    .expect("registry poisoned")
                    .insert(txn, MpscEntry { sender: tx, method });
                debug_assert!(prev.is_none(), "transaction id {txn} reused while live");
                *slot = Some(rx);
                false
            }
            _ => unreachable!("client mailbox from a different reply plane"),
        }
    }

    /// Remove an incarnation (commit, abort or restart).
    pub(crate) fn deregister(&self, txn: TxnId) {
        match &self.plane {
            Plane::Mailbox(reg) => reg.deregister(txn.0),
            Plane::Mpsc(plane) => {
                plane.inner.lock().expect("registry poisoned").remove(&txn);
            }
        }
    }

    /// Number of live incarnations.
    pub(crate) fn len(&self) -> usize {
        match &self.plane {
            Plane::Mailbox(reg) => reg.len(),
            Plane::Mpsc(plane) => plane.inner.lock().expect("registry poisoned").len(),
        }
    }

    /// Deliver a batch of replies — the shard loop flushes all replies
    /// produced by one drained command batch this way. Every reply a
    /// transaction earned in the flush is grouped into one
    /// [`ClientEvent::Replies`] (one wakeup per transaction per flush,
    /// even when different transactions' replies interleave), with the
    /// transaction's replies kept in processing order. The mpsc plane
    /// takes its map lock once per flush; the mailbox plane takes no
    /// lock at all.
    ///
    /// Allocation-conscious callers (the shard loop) use
    /// [`Registry::deliver_all_with`] with a retained scratch buffer;
    /// this convenience form allocates a fresh one.
    #[cfg(test)]
    pub(crate) fn deliver_all<I: IntoIterator<Item = ReplyMsg>>(&self, replies: I) {
        self.deliver_all_with(replies, &mut Vec::new());
    }

    /// [`Registry::deliver_all`] with a caller-retained scratch buffer
    /// for the per-transaction groups, so a hot flush path pays no heap
    /// allocation for the grouping (the inline `SmallBatch` runs already
    /// cross for free). `scratch` is left empty with its capacity
    /// intact.
    pub(crate) fn deliver_all_with<I: IntoIterator<Item = ReplyMsg>>(
        &self,
        replies: I,
        scratch: &mut Vec<(TxnId, SmallBatch<ReplyMsg>)>,
    ) {
        // Group by transaction, preserving first-appearance order across
        // transactions and processing order within one. Flushes touch a
        // handful of transactions, so a linear scan beats hashing.
        debug_assert!(scratch.is_empty());
        for reply in replies {
            let txn = reply.txn();
            match scratch.iter_mut().find(|(t, _)| *t == txn) {
                Some((_, run)) => run.push(reply),
                None => {
                    let mut run = SmallBatch::new();
                    run.push(reply);
                    scratch.push((txn, run));
                }
            }
        }
        match &self.plane {
            Plane::Mailbox(reg) => {
                for (txn, run) in scratch.drain(..) {
                    if !reg.deliver(txn.0, ClientEvent::Replies(run)) {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Plane::Mpsc(plane) => {
                let map = plane.inner.lock().expect("registry poisoned");
                for (txn, run) in scratch.drain(..) {
                    match map.get(&txn) {
                        // A send error means the client hung up between
                        // deregistering and dropping the receiver;
                        // equivalent to a stale reply.
                        Some(entry) => {
                            let _ = entry.sender.send(ClientEvent::Replies(run));
                        }
                        None => {
                            self.dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }

    /// The method a live incarnation runs under.
    pub(crate) fn method_of(&self, txn: TxnId) -> Option<CcMethod> {
        match &self.plane {
            Plane::Mailbox(reg) => reg.resolve_meta(txn.0).and_then(meta_method),
            Plane::Mpsc(plane) => plane
                .inner
                .lock()
                .expect("registry poisoned")
                .get(&txn)
                .map(|e| e.method),
        }
    }

    /// Signal a deadlock victim. Returns true if the incarnation was
    /// live and the signal was queued.
    pub(crate) fn signal_deadlock(&self, txn: TxnId) -> bool {
        match &self.plane {
            Plane::Mailbox(reg) => reg.deliver(txn.0, ClientEvent::DeadlockVictim),
            Plane::Mpsc(plane) => {
                let map = plane.inner.lock().expect("registry poisoned");
                match map.get(&txn) {
                    Some(entry) => entry.sender.send(ClientEvent::DeadlockVictim).is_ok(),
                    None => false,
                }
            }
        }
    }

    /// Registrations currently parked on the mailbox slab's overflow map
    /// (live bucket collisions with the resizable index at its growth
    /// ceiling). Always zero on the mpsc plane. Nonzero values are
    /// correct but mean `reply_index_max_capacity` is undersized for the
    /// live-transaction spread.
    pub(crate) fn overflow_entries(&self) -> usize {
        match &self.plane {
            Plane::Mailbox(reg) => reg.overflow_entries(),
            Plane::Mpsc(_) => 0,
        }
    }

    /// Buckets in the newest generation of the mailbox slab's resizable
    /// index (zero on the mpsc plane, which has no index).
    pub(crate) fn index_capacity(&self) -> usize {
        match &self.plane {
            Plane::Mailbox(reg) => reg.index_capacity(),
            Plane::Mpsc(_) => 0,
        }
    }

    /// Completed growths of the mailbox slab's index.
    pub(crate) fn index_resizes(&self) -> u64 {
        match &self.plane {
            Plane::Mailbox(reg) => reg.index_resizes(),
            Plane::Mpsc(_) => 0,
        }
    }

    /// Reply deliveries dropped because a live mailbox stayed full past
    /// the deliver timeout (a stalled client; its incarnation recovers
    /// through the normal restart machinery).
    pub(crate) fn full_drops(&self) -> u64 {
        match &self.plane {
            Plane::Mailbox(reg) => reg.full_dropped(),
            Plane::Mpsc(_) => 0,
        }
    }

    /// Stale reply events suppressed so far: deliveries dropped because
    /// no live incarnation matched, plus (mailbox plane) events
    /// discarded consumer-side by the incarnation tag.
    pub(crate) fn stale_reply_events(&self) -> u64 {
        let consumer_side = match &self.plane {
            Plane::Mailbox(reg) => reg.stale_dropped(),
            Plane::Mpsc(_) => 0,
        };
        self.dropped.load(Ordering::Relaxed) + consumer_side
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{LogicalItemId, PhysicalItemId, SiteId};

    const PLANES: [ReplyPlaneKind; 2] = [ReplyPlaneKind::Mailbox, ReplyPlaneKind::Mpsc];

    fn reply(txn: u64) -> ReplyMsg {
        reply_on(txn, 1)
    }

    fn reply_on(txn: u64, item: u64) -> ReplyMsg {
        ReplyMsg::Ack {
            txn: TxnId(txn),
            item: PhysicalItemId::new(LogicalItemId(item), SiteId(0)),
        }
    }

    fn recv_now(mb: &mut ClientMailbox, txn: u64) -> Result<ClientEvent, ClientRecvError> {
        mb.recv_timeout(TxnId(txn), Duration::from_millis(200))
    }

    /// Drain every event currently queued for `txn` (bounded wait).
    fn drain_events(mb: &mut ClientMailbox, txn: u64) -> Vec<ClientEvent> {
        let mut events = Vec::new();
        while let Ok(ev) = mb.recv_timeout(TxnId(txn), Duration::from_millis(50)) {
            events.push(ev);
        }
        events
    }

    #[test]
    fn delivers_to_registered_and_drops_unknown() {
        for plane in PLANES {
            let registry = Registry::new(plane, 64);
            let mut mb = registry.client_mailbox().expect("mailbox");
            registry.register(TxnId(1), CcMethod::TwoPhaseLocking, &mut mb);
            assert_eq!(registry.len(), 1);
            // One flush delivers the known reply and drops the unknown.
            registry.deliver_all([reply(1), reply(2)]);
            assert!(matches!(recv_now(&mut mb, 1), Ok(ClientEvent::Replies(_))));
            assert!(recv_now(&mut mb, 1).is_err());
            registry.deregister(TxnId(1));
            assert_eq!(registry.len(), 0);
            registry.deliver_all([reply(1)]); // now stale: dropped
            assert!(recv_now(&mut mb, 1).is_err());
            assert!(
                registry.stale_reply_events() >= 2,
                "{plane:?}: both stale replies counted"
            );
        }
    }

    #[test]
    fn deadlock_signal_reaches_live_victims_only() {
        for plane in PLANES {
            let registry = Registry::new(plane, 64);
            let mut mb = registry.client_mailbox().expect("mailbox");
            registry.register(TxnId(7), CcMethod::TwoPhaseLocking, &mut mb);
            assert_eq!(
                registry.method_of(TxnId(7)),
                Some(CcMethod::TwoPhaseLocking)
            );
            assert_eq!(registry.method_of(TxnId(8)), None);
            assert!(registry.signal_deadlock(TxnId(7)));
            assert!(!registry.signal_deadlock(TxnId(8)));
            assert!(matches!(
                recv_now(&mut mb, 7),
                Ok(ClientEvent::DeadlockVictim)
            ));
            registry.deregister(TxnId(7));
        }
    }

    /// The coalescing guarantee (and the fix for the consecutive-run
    /// footgun): one flush interleaving two transactions' replies —
    /// A,B,A,B,A,B — wakes each client exactly once, with its three
    /// replies grouped in order. The old consecutive-run coalescing
    /// produced three events (three wakeups) per client for the same
    /// flush.
    #[test]
    fn interleaved_flush_coalesces_to_one_event_per_txn() {
        for plane in PLANES {
            let registry = Registry::new(plane, 64);
            let mut mb_a = registry.client_mailbox().expect("mailbox");
            let mut mb_b = registry.client_mailbox().expect("mailbox");
            registry.register(TxnId(1), CcMethod::TwoPhaseLocking, &mut mb_a);
            registry.register(TxnId(2), CcMethod::TwoPhaseLocking, &mut mb_b);
            registry.deliver_all([
                reply_on(1, 10),
                reply_on(2, 20),
                reply_on(1, 11),
                reply_on(2, 21),
                reply_on(1, 12),
                reply_on(2, 22),
            ]);
            for (mb, txn, items) in [
                (&mut mb_a, 1u64, [10u64, 11, 12]),
                (&mut mb_b, 2, [20, 21, 22]),
            ] {
                let events = drain_events(mb, txn);
                assert_eq!(
                    events.len(),
                    1,
                    "{plane:?}: exactly one wakeup event per transaction per flush"
                );
                let ClientEvent::Replies(batch) = &events[0] else {
                    panic!("{plane:?}: expected replies");
                };
                let seen: Vec<u64> = batch.iter().map(|r| r.item().logical.0).collect();
                assert_eq!(seen, items, "{plane:?}: replies grouped in order");
            }
            registry.deregister(TxnId(1));
            registry.deregister(TxnId(2));
        }
    }

    /// Satellite 2, deterministic half: a `DeadlockVictim` signal
    /// arriving between two reply flushes is neither lost nor reordered
    /// around them — the client observes replies, then the victim, then
    /// the later replies, on both planes.
    #[test]
    fn victim_signal_keeps_its_place_between_reply_flushes() {
        for plane in PLANES {
            let registry = Registry::new(plane, 64);
            let mut mb = registry.client_mailbox().expect("mailbox");
            registry.register(TxnId(5), CcMethod::TwoPhaseLocking, &mut mb);
            registry.deliver_all([reply_on(5, 1), reply_on(5, 2)]);
            assert!(registry.signal_deadlock(TxnId(5)));
            registry.deliver_all([reply_on(5, 3)]);
            let events = drain_events(&mut mb, 5);
            let shape: Vec<&'static str> = events
                .iter()
                .map(|e| match e {
                    ClientEvent::Replies(_) => "replies",
                    ClientEvent::DeadlockVictim => "victim",
                })
                .collect();
            assert_eq!(
                shape,
                ["replies", "victim", "replies"],
                "{plane:?}: the victim signal must keep its place"
            );
            registry.deregister(TxnId(5));
        }
    }

    /// A victim signal for an incarnation that restarted before the
    /// client consumed it must not leak into the next incarnation.
    #[test]
    fn stale_victim_signal_never_reaches_the_next_incarnation() {
        let registry = Registry::new(ReplyPlaneKind::Mailbox, 64);
        let mut mb = registry.client_mailbox().expect("mailbox");
        registry.register(TxnId(1), CcMethod::TwoPhaseLocking, &mut mb);
        assert!(registry.signal_deadlock(TxnId(1)));
        // The incarnation restarts without consuming the signal; the
        // same mailbox serves the next incarnation.
        registry.deregister(TxnId(1));
        registry.register(TxnId(2), CcMethod::TwoPhaseLocking, &mut mb);
        registry.deliver_all([reply(2)]);
        let events = drain_events(&mut mb, 2);
        assert_eq!(events.len(), 1);
        assert!(
            matches!(events[0], ClientEvent::Replies(_)),
            "the stale victim must have been discarded, not delivered"
        );
        registry.deregister(TxnId(2));
    }
}
