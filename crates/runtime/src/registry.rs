//! The live-transaction registry: the runtime's reply router.
//!
//! Shards and the deadlock detector address transactions by [`TxnId`]; the
//! registry maps each live incarnation to the (unbounded) event channel its
//! client thread is blocked on. Entries are registered when an incarnation
//! starts and removed when it commits, aborts or restarts; events addressed
//! to an unknown transaction are dropped, which is exactly the "stale reply
//! for an aborted incarnation" rule the simulator implements.

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::Mutex;

use dbmodel::{CcMethod, TxnId};
use pam::ReplyMsg;
use transport::batch::SmallBatch;

/// An event delivered to the client thread driving one incarnation.
// The variant size gap is deliberate: reply batches travel inline so no
// heap allocation crosses the shard→client boundary, and the victim
// signal is rare enough that padding it costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum ClientEvent {
    /// One or more queue-manager replies for this incarnation, in
    /// processing order. A shard's batch flush groups the consecutive
    /// replies a transaction earned in one drained batch (e.g. all grants
    /// of a multi-item access phase at that shard) into a single event,
    /// so the waiting client is woken once per shard per phase, not once
    /// per item.
    Replies(SmallBatch<ReplyMsg>),
    /// The deadlock detector chose this incarnation as a victim.
    DeadlockVictim,
}

struct Entry {
    sender: Sender<ClientEvent>,
    method: CcMethod,
}

/// Shared map of live incarnations.
#[derive(Default)]
pub(crate) struct Registry {
    inner: Mutex<HashMap<TxnId, Entry>>,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry::default()
    }

    /// Register a new incarnation.
    pub(crate) fn register(&self, txn: TxnId, method: CcMethod, sender: Sender<ClientEvent>) {
        let mut map = self.inner.lock().expect("registry poisoned");
        let prev = map.insert(txn, Entry { sender, method });
        debug_assert!(prev.is_none(), "transaction id {txn} reused while live");
    }

    /// Remove an incarnation (commit, abort or restart).
    pub(crate) fn deregister(&self, txn: TxnId) {
        self.inner.lock().expect("registry poisoned").remove(&txn);
    }

    /// Number of live incarnations.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("registry poisoned").len()
    }

    /// Deliver a batch of replies under a single registry lock — the shard
    /// loop flushes all replies produced by one drained command batch this
    /// way, so registry lock traffic scales with batches, not messages —
    /// coalescing consecutive same-transaction runs into single events.
    pub(crate) fn deliver_all<I: IntoIterator<Item = ReplyMsg>>(&self, replies: I) {
        let map = self.inner.lock().expect("registry poisoned");
        let mut run: SmallBatch<ReplyMsg> = SmallBatch::new();
        let mut run_txn: Option<TxnId> = None;
        let flush = |txn: Option<TxnId>, run: SmallBatch<ReplyMsg>| {
            let Some(txn) = txn else { return };
            if let Some(entry) = map.get(&txn) {
                // A send error means the client hung up between
                // deregistering and dropping the receiver; equivalent to a
                // stale reply.
                let _ = entry.sender.send(ClientEvent::Replies(run));
            }
        };
        for reply in replies {
            if run_txn == Some(reply.txn()) {
                run.push(reply);
                continue;
            }
            flush(run_txn, std::mem::take(&mut run));
            run_txn = Some(reply.txn());
            run.push(reply);
        }
        flush(run_txn, run);
    }

    /// The method a live incarnation runs under.
    pub(crate) fn method_of(&self, txn: TxnId) -> Option<CcMethod> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .get(&txn)
            .map(|e| e.method)
    }

    /// Signal a deadlock victim. Returns true if the incarnation was live.
    pub(crate) fn signal_deadlock(&self, txn: TxnId) -> bool {
        let map = self.inner.lock().expect("registry poisoned");
        match map.get(&txn) {
            Some(entry) => entry.sender.send(ClientEvent::DeadlockVictim).is_ok(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{LogicalItemId, PhysicalItemId, SiteId};
    use std::sync::mpsc;

    fn reply(txn: u64) -> ReplyMsg {
        ReplyMsg::Ack {
            txn: TxnId(txn),
            item: PhysicalItemId::new(LogicalItemId(1), SiteId(0)),
        }
    }

    #[test]
    fn delivers_to_registered_and_drops_unknown() {
        let registry = Registry::new();
        let (tx, rx) = mpsc::channel();
        registry.register(TxnId(1), CcMethod::TwoPhaseLocking, tx);
        assert_eq!(registry.len(), 1);
        // One locked pass delivers the known reply and drops the unknown.
        registry.deliver_all([reply(1), reply(2)]);
        assert!(matches!(rx.try_recv(), Ok(ClientEvent::Replies(_))));
        assert!(rx.try_recv().is_err());
        registry.deregister(TxnId(1));
        assert_eq!(registry.len(), 0);
        registry.deliver_all([reply(1)]); // now stale: dropped
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn deadlock_signal_reaches_live_victims_only() {
        let registry = Registry::new();
        let (tx, rx) = mpsc::channel();
        registry.register(TxnId(7), CcMethod::TwoPhaseLocking, tx);
        assert_eq!(
            registry.method_of(TxnId(7)),
            Some(CcMethod::TwoPhaseLocking)
        );
        assert_eq!(registry.method_of(TxnId(8)), None);
        assert!(registry.signal_deadlock(TxnId(7)));
        assert!(!registry.signal_deadlock(TxnId(8)));
        assert!(matches!(rx.try_recv(), Ok(ClientEvent::DeadlockVictim)));
    }
}
