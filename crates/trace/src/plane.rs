//! The tracing plane itself: per-lane flight recorders, per-lane phase
//! counters, striped Section-5 accumulators, and the latched postmortem
//! dump.
//!
//! Lane layout: one lane per shard thread (lane index = shard index),
//! then [`CLIENT_LANES`] lanes shared by client threads round-robin
//! (thread-affine, assigned on a thread's first record — the same scheme
//! as the runtime's metrics stripes). A `record` is one relaxed
//! `fetch_add` on the lane's phase counter plus, at
//! [`TraceLevel::Full`], one seqlock ring write: no locks, no
//! allocation, no branches beyond the level checks.
//!
//! The span accumulators are *not* on the per-event path: a client
//! thread folds its six boundary timestamps into the striped
//! [`MethodBreakdown`] once per committed incarnation (and once per
//! restart), through a thread-affine mutex stripe that is effectively
//! uncontended — the same commit-path-cheap pattern as `MetricsShards`.

use std::cell::Cell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use dbmodel::CcMethod;
use transport::stamp::now_nanos;
use transport::CachePadded;

use crate::collect::{phase_count_pairs, MethodBreakdown, SpanTimings, TraceReport};
use crate::event::{pack_meta, Phase, TraceEvent, NUM_PHASES};
use crate::json::Json;
use crate::ring::FlightRing;

/// Client lanes appended after the shard lanes (threads beyond this
/// share lanes round-robin).
pub const CLIENT_LANES: usize = 16;

/// How much the plane records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Nothing — every record call returns on its first branch, and the
    /// plane allocates no rings and no accumulators.
    Off,
    /// Phase counters and Section-5 span accumulation, but no event
    /// rings (no flight recorder, no postmortem).
    Counters,
    /// Everything: counters, span accumulation, per-lane flight-recorder
    /// rings, transport dwell stamps, postmortem dumps.
    Full,
}

/// Configuration of the tracing plane ([`crate::TracePlane::new`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    pub level: TraceLevel,
    /// Events each lane's flight recorder retains (rounded up to a power
    /// of two).
    pub ring_capacity: usize,
    /// Where postmortem JSONL dumps go; `None` disables dumping even at
    /// `Full`.
    pub postmortem_dir: Option<PathBuf>,
    /// Last-N events per lane included in a postmortem dump.
    pub postmortem_last: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            // The flight recorder is always on: the rings are bounded,
            // the write is a few relaxed stores, and the m8 CI gate
            // holds the overhead to a measured floor.
            level: TraceLevel::Full,
            ring_capacity: 4096,
            postmortem_dir: None,
            postmortem_last: 256,
        }
    }
}

impl TraceConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.level != TraceLevel::Off && self.ring_capacity == 0 {
            return Err("trace ring capacity must be non-zero".into());
        }
        if self.postmortem_dir.is_some() && self.postmortem_last == 0 {
            return Err("postmortem_last must be non-zero when dumping".into());
        }
        Ok(())
    }
}

/// Per-lane event counters, cache-padded so lanes never false-share.
struct PhaseCounters([AtomicU64; NUM_PHASES]);

impl PhaseCounters {
    fn new() -> Self {
        PhaseCounters(std::array::from_fn(|_| AtomicU64::new(0)))
    }

    #[inline]
    fn bump(&self, phase: Phase) {
        self.0[phase as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Index into the per-method accumulator arrays.
fn method_slot(method: CcMethod) -> usize {
    match method {
        CcMethod::TwoPhaseLocking => 0,
        CcMethod::TimestampOrdering => 1,
        CcMethod::PrecedenceAgreement => 2,
    }
}

/// One stripe of Section-5 accumulation (lazily per method, so a
/// single-method run pays one breakdown per stripe).
#[derive(Default)]
struct SpanAccum {
    methods: [Option<Box<MethodBreakdown>>; 3],
}

impl SpanAccum {
    fn breakdown(&mut self, method: CcMethod) -> &mut MethodBreakdown {
        self.methods[method_slot(method)]
            .get_or_insert_with(|| Box::new(MethodBreakdown::new(method)))
    }
}

const SPAN_STRIPES: usize = 16;

thread_local! {
    /// This thread's lane/stripe offset, assigned on first use (shared
    /// by every plane in the process, like the metrics stripe index).
    static TRACE_LANE: Cell<usize> = const { Cell::new(usize::MAX) };
}

static NEXT_THREAD_LANE: AtomicUsize = AtomicUsize::new(0);

fn thread_offset() -> usize {
    TRACE_LANE.with(|cell| {
        let mut offset = cell.get();
        if offset == usize::MAX {
            offset = NEXT_THREAD_LANE.fetch_add(1, Ordering::Relaxed);
            cell.set(offset);
        }
        offset
    })
}

/// The flight-recorder tracing plane (one per `Database`).
pub struct TracePlane {
    level: TraceLevel,
    shard_lanes: usize,
    /// Flight-recorder rings, one per lane (empty below `Full`).
    lanes: Box<[FlightRing]>,
    /// Per-lane phase counters (empty at `Off`).
    counts: Box<[CachePadded<PhaseCounters>]>,
    /// Striped Section-5 accumulators (empty at `Off`).
    stripes: Box<[CachePadded<Mutex<SpanAccum>>]>,
    postmortem_dir: Option<PathBuf>,
    postmortem_last: usize,
    postmortem_fired: AtomicBool,
}

impl std::fmt::Debug for TracePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracePlane")
            .field("level", &self.level)
            .field("shard_lanes", &self.shard_lanes)
            .field("lanes", &self.lanes.len())
            .finish()
    }
}

impl TracePlane {
    /// Build a plane with `shard_lanes` shard lanes plus the client
    /// lanes.
    pub fn new(config: &TraceConfig, shard_lanes: usize) -> TracePlane {
        let total = shard_lanes + CLIENT_LANES;
        let lanes = if config.level == TraceLevel::Full {
            (0..total)
                .map(|_| FlightRing::new(config.ring_capacity))
                .collect()
        } else {
            Box::from([])
        };
        let counts = if config.level >= TraceLevel::Counters {
            (0..total)
                .map(|_| CachePadded::new(PhaseCounters::new()))
                .collect()
        } else {
            Box::from([])
        };
        let stripes = if config.level >= TraceLevel::Counters {
            (0..SPAN_STRIPES)
                .map(|_| CachePadded::new(Mutex::new(SpanAccum::default())))
                .collect()
        } else {
            Box::from([])
        };
        TracePlane {
            level: config.level,
            shard_lanes,
            lanes,
            counts,
            stripes,
            postmortem_dir: config.postmortem_dir.clone(),
            postmortem_last: config.postmortem_last,
            postmortem_fired: AtomicBool::new(false),
        }
    }

    /// The configured level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// The lane of shard `idx`.
    pub fn shard_lane(&self, idx: usize) -> usize {
        idx
    }

    /// The calling thread's client lane (thread-affine round-robin).
    pub fn client_lane(&self) -> usize {
        self.shard_lanes + thread_offset() % CLIENT_LANES
    }

    /// The shared clock, or 0 when the plane is off (so an untraced run
    /// never pays a clock read).
    #[inline]
    pub fn now(&self) -> u64 {
        if self.level == TraceLevel::Off {
            0
        } else {
            now_nanos()
        }
    }

    /// Record one event at the current time.
    #[inline]
    pub fn record(&self, lane: usize, txn: u64, phase: Phase, arg: u32) {
        if self.level == TraceLevel::Off {
            return;
        }
        self.record_at(lane, now_nanos(), txn, phase, arg);
    }

    /// Record one event with an explicit timestamp (used when the caller
    /// already read the clock, or shares one read across a batch).
    #[inline]
    pub fn record_at(&self, lane: usize, ts_nanos: u64, txn: u64, phase: Phase, arg: u32) {
        if self.level == TraceLevel::Off {
            return;
        }
        self.counts[lane].bump(phase);
        if self.level == TraceLevel::Full {
            self.lanes[lane].record(ts_nanos, txn, pack_meta(phase, arg));
        }
    }

    /// Fold one committed incarnation's boundary timestamps into the
    /// Section-5 accumulator (called once per commit, off the per-event
    /// path; the stripe mutex is thread-affine and uncontended).
    pub fn record_span(&self, method: CcMethod, timings: &SpanTimings) {
        if self.level == TraceLevel::Off {
            return;
        }
        let stripe = thread_offset() % self.stripes.len();
        let mut accum = self.stripes[stripe].lock().expect("span stripe poisoned");
        accum.breakdown(method).record_span(timings);
    }

    /// Fold one failed incarnation's begin→restart duration.
    pub fn record_restart(&self, method: CcMethod, nanos: u64) {
        if self.level == TraceLevel::Off {
            return;
        }
        let stripe = thread_offset() % self.stripes.len();
        let mut accum = self.stripes[stripe].lock().expect("span stripe poisoned");
        accum
            .breakdown(method)
            .restart_overhead
            .record(nanos as f64 / 1_000.0);
    }

    /// Total events recorded per phase, summed over every lane.
    pub fn phase_counts(&self) -> [u64; NUM_PHASES] {
        let mut totals = [0u64; NUM_PHASES];
        for lane in self.counts.iter() {
            for (total, count) in totals.iter_mut().zip(&lane.0 .0[..]) {
                *total += count.load(Ordering::Relaxed);
            }
        }
        totals
    }

    /// Total events recorded across all phases.
    pub fn events_recorded(&self) -> u64 {
        self.phase_counts().iter().sum()
    }

    /// Snapshot every lane's surviving events (unsorted across lanes).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            lane.snapshot_into(i as u32, &mut out);
        }
        out
    }

    /// Merge the striped accumulators and counters into a report (the
    /// caller attaches transport dwell meters it owns).
    pub fn report(&self) -> TraceReport {
        let mut methods: [Option<MethodBreakdown>; 3] = [None, None, None];
        for stripe in self.stripes.iter() {
            let accum = stripe.lock().expect("span stripe poisoned");
            for (slot, partial) in methods.iter_mut().zip(&accum.methods) {
                if let Some(partial) = partial {
                    slot.get_or_insert_with(|| MethodBreakdown::new(partial.method))
                        .merge_from(partial);
                }
            }
        }
        TraceReport {
            methods: methods.into_iter().flatten().collect(),
            phase_counts: phase_count_pairs(self.phase_counts()),
            transport_dwell: Vec::new(),
        }
    }

    /// Dump the last-N events of every lane as JSONL, once per plane:
    /// the first anomaly (deadlock victim, sercheck failure, mailbox
    /// overflow) wins, later triggers are no-ops. Returns the path
    /// written, or `None` when dumping is disabled, already latched, or
    /// the level holds no rings.
    pub fn trigger_postmortem(&self, reason: &str) -> Option<PathBuf> {
        if self.level != TraceLevel::Full {
            return None;
        }
        let dir = self.postmortem_dir.as_deref()?;
        if self.postmortem_fired.swap(true, Ordering::SeqCst) {
            return None;
        }
        Some(self.write_postmortem(dir, reason))
    }

    fn write_postmortem(&self, dir: &Path, reason: &str) -> PathBuf {
        let mut events = Vec::new();
        let mut lane_events = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            lane_events.clear();
            lane.snapshot_into(i as u32, &mut lane_events);
            let keep_from = lane_events.len().saturating_sub(self.postmortem_last);
            events.extend_from_slice(&lane_events[keep_from..]);
        }
        events.sort_by_key(|e| e.ts_nanos);

        let safe: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("trace_postmortem_{safe}.jsonl"));

        let mut out = String::new();
        let header = Json::obj([
            ("reason", Json::str(reason)),
            ("shard_lanes", Json::num(self.shard_lanes as u32)),
            ("client_lanes", Json::num(CLIENT_LANES as u32)),
            ("events", Json::num(events.len() as u32)),
        ]);
        out.push_str(&header.to_string());
        out.push('\n');
        for e in &events {
            let line = Json::obj([
                ("lane", Json::num(e.lane)),
                ("ts_nanos", Json::Num(e.ts_nanos as f64)),
                ("txn", Json::Num(e.txn as f64)),
                ("phase", Json::str(e.phase.name())),
                ("arg", Json::num(e.arg)),
            ]);
            out.push_str(&line.to_string());
            out.push('\n');
        }
        // Postmortems are best-effort diagnostics: a failed write must
        // never take down the run that is already anomalous.
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(&path, out);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_config() -> TraceConfig {
        TraceConfig {
            level: TraceLevel::Full,
            ring_capacity: 64,
            postmortem_dir: None,
            postmortem_last: 8,
        }
    }

    #[test]
    fn off_plane_allocates_nothing_and_ignores_records() {
        let plane = TracePlane::new(
            &TraceConfig {
                level: TraceLevel::Off,
                ..TraceConfig::default()
            },
            4,
        );
        assert_eq!(plane.now(), 0);
        plane.record(0, 1, Phase::Begin, 0);
        plane.record_span(CcMethod::TwoPhaseLocking, &SpanTimings::default());
        assert_eq!(plane.events_recorded(), 0);
        assert!(plane.snapshot().is_empty());
        assert!(plane.report().methods.is_empty());
    }

    #[test]
    fn full_plane_records_events_and_spans() {
        let plane = TracePlane::new(&full_config(), 2);
        let lane = plane.client_lane();
        assert!(lane >= 2, "client lanes follow shard lanes");
        plane.record_at(lane, 100, 7, Phase::Begin, 0);
        plane.record_at(lane, 200, 7, Phase::Committed, 0);
        plane.record(plane.shard_lane(1), 7, Phase::Granted, 3);
        assert_eq!(plane.events_recorded(), 3);

        let events = plane.snapshot();
        assert_eq!(events.len(), 3);
        assert!(events
            .iter()
            .any(|e| e.lane == 1 && e.phase == Phase::Granted));

        plane.record_span(
            CcMethod::TimestampOrdering,
            &SpanTimings {
                begin: 0,
                selection_done: 1_000,
                enqueued: 2_000,
                exec_start: 3_000,
                commit_start: 4_000,
                committed: 5_000,
            },
        );
        plane.record_restart(CcMethod::TimestampOrdering, 10_000);
        let report = plane.report();
        let to = report.method(CcMethod::TimestampOrdering).unwrap();
        assert_eq!(to.spans(), 1);
        assert_eq!(to.restart_overhead.count(), 1);
        assert!((to.phase_sum_mean_us() - to.end_to_end_mean_us()).abs() < 1e-9);
        assert_eq!(report.events_recorded(), 3);
        assert!(report.format_table().contains("T/O"));
    }

    #[test]
    fn counters_level_counts_without_rings() {
        let plane = TracePlane::new(
            &TraceConfig {
                level: TraceLevel::Counters,
                ..TraceConfig::default()
            },
            1,
        );
        plane.record(plane.client_lane(), 1, Phase::Begin, 0);
        assert_eq!(plane.events_recorded(), 1);
        assert!(plane.snapshot().is_empty(), "no rings below Full");
        assert!(plane.trigger_postmortem("x").is_none());
    }

    #[test]
    fn postmortem_dumps_once_and_parses_as_jsonl() {
        let dir = std::env::temp_dir().join(format!(
            "trace_plane_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let plane = TracePlane::new(
            &TraceConfig {
                postmortem_dir: Some(dir.clone()),
                ..full_config()
            },
            1,
        );
        for i in 0..20u64 {
            plane.record_at(0, i, i, Phase::ShardRecv, 2);
        }
        let path = plane
            .trigger_postmortem("deadlock victim!")
            .expect("first trigger dumps");
        assert!(path.to_string_lossy().contains("deadlock-victim-"));
        assert!(
            plane.trigger_postmortem("second").is_none(),
            "latched after the first anomaly"
        );

        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("reason").and_then(Json::as_str),
            Some("deadlock victim!")
        );
        // postmortem_last = 8 on a lane holding 20: the dump keeps 8.
        assert_eq!(header.get("events").and_then(Json::as_f64), Some(8.0));
        let events: Vec<Json> = lines.map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(events.len(), 8);
        assert!(events
            .iter()
            .all(|e| e.get("phase").and_then(Json::as_str) == Some("shard-recv")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
