//! The flight-recorder ring: a bounded, overwrite-on-wrap event buffer
//! with a lock-free, allocation-free write path.
//!
//! Unlike the transport ring (a *queue* — every value is consumed
//! exactly once, full means backpressure), a flight recorder never
//! blocks and never fills: position `pos` simply overwrites slot
//! `pos % capacity`, so the ring always holds the last `capacity` events
//! written to it. Readers are rare (a report, a postmortem dump) and
//! must tolerate racing writers; each slot is published under a seqlock
//! word, and a reader discards any slot whose sequence moved while it
//! was copying the three data words out. A discarded slot is an event
//! that was being overwritten mid-snapshot — exactly the event the
//! recorder was about to forget anyway.
//!
//! Writers are usually one thread per lane (each shard owns its lane),
//! but client lanes may be shared by more threads than lanes exist; two
//! writers lapping each other *on the same slot inside one snapshot
//! window* can in principle interleave their data words under a matching
//! final sequence. That requires a writer to stall mid-record for a full
//! ring lap and costs at worst one garbled diagnostic event, which the
//! phase-byte validation below usually rejects anyway.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use transport::CachePadded;

use crate::event::{unpack_meta, TraceEvent};

struct Slot {
    /// Seqlock word: `0` while a write is in flight, `pos + 1` once the
    /// event claimed at position `pos` is published.
    seq: AtomicU64,
    ts: AtomicU64,
    txn: AtomicU64,
    meta: AtomicU64,
}

/// A bounded overwrite-on-wrap event ring (one per traced lane).
pub struct FlightRing {
    /// Total events ever claimed; the write cursor.
    head: CachePadded<AtomicU64>,
    mask: u64,
    slots: Box<[Slot]>,
}

impl FlightRing {
    /// Create a ring holding the last `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> FlightRing {
        let cap = capacity.next_power_of_two().max(2);
        FlightRing {
            head: CachePadded::new(AtomicU64::new(0)),
            mask: (cap - 1) as u64,
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    ts: AtomicU64::new(0),
                    txn: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever written (≥ `capacity()` means wrap-around loss).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Write one event: one `fetch_add` and four plain stores, no lock,
    /// no allocation, never blocks.
    #[inline]
    pub fn record(&self, ts_nanos: u64, txn: u64, meta: u64) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        // Seqlock write: invalidate, fence so the invalidation is visible
        // before any data word, publish data, then stamp the generation.
        slot.seq.store(0, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.ts.store(ts_nanos, Ordering::Relaxed);
        slot.txn.store(txn, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
    }

    /// Copy every event still resident (oldest first) into `out`,
    /// tagging each with `lane`. Slots a racing writer is overwriting are
    /// skipped.
    pub fn snapshot_into(&self, lane: u32, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let window = head.min(self.slots.len() as u64);
        for pos in (head - window)..head {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != pos.wrapping_add(1) {
                continue; // in-flight write or already overwritten
            }
            let ts_nanos = slot.ts.load(Ordering::Relaxed);
            let txn = slot.txn.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                continue; // overwritten while copying
            }
            if let Some((phase, arg)) = unpack_meta(meta) {
                out.push(TraceEvent {
                    lane,
                    ts_nanos,
                    txn,
                    phase,
                    arg,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::event::{pack_meta, Phase};

    use super::*;

    #[test]
    fn holds_the_last_capacity_events() {
        let ring = FlightRing::new(4);
        for i in 0..10u64 {
            ring.record(i, i, pack_meta(Phase::Begin, i as u32));
        }
        assert_eq!(ring.recorded(), 10);
        let mut out = Vec::new();
        ring.snapshot_into(7, &mut out);
        assert_eq!(out.len(), 4, "only the last lap survives");
        assert_eq!(
            out.iter().map(|e| e.txn).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest first"
        );
        assert!(out.iter().all(|e| e.lane == 7 && e.phase == Phase::Begin));
    }

    #[test]
    fn partial_fill_snapshots_everything() {
        let ring = FlightRing::new(8);
        ring.record(1, 42, pack_meta(Phase::Committed, 3));
        let mut out = Vec::new();
        ring.snapshot_into(0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].txn, 42);
        assert_eq!(out[0].phase, Phase::Committed);
        assert_eq!(out[0].arg, 3);
    }

    #[test]
    fn concurrent_writers_never_corrupt_a_snapshot() {
        let ring = std::sync::Arc::new(FlightRing::new(512));
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        // Every writer maintains ts == txn so a torn
                        // cross-writer mix is detectable.
                        let v = w * 1_000_000 + i;
                        ring.record(v, v, pack_meta(Phase::Granted, w as u32));
                    }
                });
            }
            let mut out = Vec::new();
            for _ in 0..50 {
                out.clear();
                ring.snapshot_into(0, &mut out);
                for e in &out {
                    assert_eq!(e.ts_nanos, e.txn, "torn slot escaped the seqlock");
                }
            }
        });
        assert_eq!(ring.recorded(), 40_000);
    }
}
