//! A minimal JSON value: emit and parse, no external dependencies.
//!
//! The workspace builds offline, so `serde` is not available; the trace
//! plane's postmortem JSONL dumps and the bench suite's `BENCH_*.json`
//! trajectory files go through this instead. The grammar is standard
//! JSON; numbers are `f64` (integral values print without a fraction, so
//! counters round-trip as `123`, not `123.0`).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (duplicate keys are emitted as given).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no Inf/NaN; null is the conventional spill.
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                expected as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our dumps;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "bad utf-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let doc = Json::obj([
            ("name", Json::str("exp9")),
            ("count", Json::num(42u32)),
            ("ratio", Json::Num(1.25)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([("label", Json::str("2PL \"wide\"\n"))]),
                    Json::Num(-3.5e-2),
                ]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(
            back.get("rows").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(123u32).to_string(), "123");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let doc = Json::parse(" { \"a\\n\" : [ 1 , true , \"x\\u0041\" ] } ").unwrap();
        let arr = doc.get("a\n").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("xA"));
    }
}
