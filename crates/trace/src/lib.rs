//! # trace — the flight-recorder tracing plane
//!
//! The paper's whole evaluation (Section 5) hangs on one quantity — the
//! average transaction system time `S`, decomposed into waiting,
//! blocking, restart and messaging components. This crate gives the live
//! runtime that decomposition without giving up the PR 3–5 hot-path
//! discipline: every shard thread and every client thread writes
//! fixed-size [`TraceEvent`] records (txn incarnation, phase tag,
//! shared-clock timestamp) into a per-lane bounded [`FlightRing`] — no
//! locks, no allocation, no branches beyond the [`TraceLevel`] checks —
//! and everything expensive happens off-thread:
//!
//! * [`TracePlane::report`] merges the striped per-method accumulators
//!   into a [`TraceReport`]: a Section-5-style table where
//!   `S = selection + transport + queue/block + execution + reply`,
//!   per CC method, with exact telescoping sums (built on
//!   [`metrics::Histogram`] and its shape-checked `merge`).
//! * [`TraceLog`] stitches ring snapshots into per-transaction
//!   [`SpanTree`]s and checks lifecycle consistency — the reconstruction
//!   oracle the integration tests run against the sercheck log.
//! * [`TracePlane::trigger_postmortem`] dumps the last N events per lane
//!   as JSONL on the first anomaly (deadlock victim, serializability
//!   violation, mailbox overflow) — the debugging artifact the PR 1/PR 4
//!   incarnation races were missing.
//! * [`json::Json`] is the dependency-free JSON emit/parse layer the
//!   dumps and the bench suite's `BENCH_*.json` trajectories share.

pub mod collect;
pub mod event;
pub mod json;
pub mod plane;
pub mod ring;

pub use collect::{
    LaneDwell, MethodBreakdown, Segment, Span, SpanTimings, SpanTree, TraceLog, TraceReport,
    SEGMENTS,
};
pub use event::{Phase, TraceEvent, NUM_PHASES, SELECTION_CACHE_HIT};
pub use plane::{TraceConfig, TraceLevel, TracePlane, CLIENT_LANES};
pub use ring::FlightRing;
