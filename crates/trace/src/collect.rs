//! The off-thread side of the tracing plane: stitch flight-recorder
//! events into per-transaction span trees, and aggregate client-side
//! phase boundaries into the paper's Section-5 decomposition of average
//! transaction system time `S`.
//!
//! Nothing here runs on a hot path — reports are built at shutdown or on
//! demand, postmortems once per anomaly.

use std::collections::BTreeMap;

use dbmodel::CcMethod;
use metrics::Histogram;

use crate::event::{Phase, TraceEvent, NUM_PHASES};

/// Number of client-side segments `S` decomposes into.
pub const SEGMENTS: usize = 5;

/// One segment of the Section-5 decomposition. Consecutive client-side
/// phase boundaries telescope: the five segment durations of a committed
/// incarnation sum *exactly* to its begin→commit latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// begin → selection-done: choosing the CC method (STL evaluation or
    /// cache hit under dynamic selection).
    Selection,
    /// selection-done → transport-enqueued: building the incarnation and
    /// fanning its access batches out onto the shard rings.
    Transport,
    /// transport-enqueued → execution-start: ring dwell, QM queueing and
    /// lock blocking, until every first grant arrived.
    QueueBlock,
    /// execution-start → commit-start: the user closure and staging.
    Execution,
    /// commit-start → committed: release fan-out until fully released.
    Reply,
}

impl Segment {
    /// Every segment, in lifecycle order.
    pub const ALL: [Segment; SEGMENTS] = [
        Segment::Selection,
        Segment::Transport,
        Segment::QueueBlock,
        Segment::Execution,
        Segment::Reply,
    ];

    /// Short column label.
    pub fn name(self) -> &'static str {
        match self {
            Segment::Selection => "sel",
            Segment::Transport => "xport",
            Segment::QueueBlock => "qu/blk",
            Segment::Execution => "exec",
            Segment::Reply => "reply",
        }
    }
}

/// The six client-side phase-boundary timestamps of one incarnation, in
/// nanoseconds on the shared clock. Collected on the client thread as
/// the incarnation advances; turned into segment durations at commit.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanTimings {
    pub begin: u64,
    pub selection_done: u64,
    pub enqueued: u64,
    pub exec_start: u64,
    pub commit_start: u64,
    pub committed: u64,
}

impl SpanTimings {
    /// The duration of one segment, in microseconds.
    pub fn segment_us(&self, segment: Segment) -> f64 {
        let (end, start) = match segment {
            Segment::Selection => (self.selection_done, self.begin),
            Segment::Transport => (self.enqueued, self.selection_done),
            Segment::QueueBlock => (self.exec_start, self.enqueued),
            Segment::Execution => (self.commit_start, self.exec_start),
            Segment::Reply => (self.committed, self.commit_start),
        };
        end.saturating_sub(start) as f64 / 1_000.0
    }

    /// begin → committed, in microseconds.
    pub fn end_to_end_us(&self) -> f64 {
        self.committed.saturating_sub(self.begin) as f64 / 1_000.0
    }
}

// Canonical histogram shapes — `Histogram::merge` panics on shape
// mismatch, so every accumulation site must build from these.
fn segment_histogram() -> Histogram {
    Histogram::new(2.0, 256) // 2µs buckets to 512µs, overflow beyond
}

fn latency_histogram() -> Histogram {
    Histogram::new(20.0, 256) // 20µs buckets to ~5ms, overflow beyond
}

/// The Section-5 decomposition for one CC method.
#[derive(Debug, Clone)]
pub struct MethodBreakdown {
    pub method: CcMethod,
    /// Per-segment duration histograms (µs), indexed like [`Segment::ALL`].
    pub segments: [Histogram; SEGMENTS],
    /// begin → committed latency of committed incarnations (µs).
    pub end_to_end: Histogram,
    /// Time burned by incarnations that restarted instead of committing
    /// — begin → restart decision, per failed incarnation (µs).
    pub restart_overhead: Histogram,
}

impl MethodBreakdown {
    pub(crate) fn new(method: CcMethod) -> MethodBreakdown {
        MethodBreakdown {
            method,
            segments: std::array::from_fn(|_| segment_histogram()),
            end_to_end: latency_histogram(),
            restart_overhead: latency_histogram(),
        }
    }

    pub(crate) fn record_span(&mut self, t: &SpanTimings) {
        for (i, segment) in Segment::ALL.iter().enumerate() {
            self.segments[i].record(t.segment_us(*segment));
        }
        self.end_to_end.record(t.end_to_end_us());
    }

    pub(crate) fn merge_from(&mut self, other: &MethodBreakdown) {
        for (mine, theirs) in self.segments.iter_mut().zip(&other.segments) {
            mine.merge(theirs);
        }
        self.end_to_end.merge(&other.end_to_end);
        self.restart_overhead.merge(&other.restart_overhead);
    }

    /// Committed spans recorded.
    pub fn spans(&self) -> u64 {
        self.end_to_end.count()
    }

    /// Sum of the five segment means — the decomposed `S` (µs). By
    /// construction this telescopes to the mean end-to-end latency.
    pub fn phase_sum_mean_us(&self) -> f64 {
        self.segments.iter().map(Histogram::mean).sum()
    }

    /// Measured mean begin→commit latency (µs).
    pub fn end_to_end_mean_us(&self) -> f64 {
        self.end_to_end.mean()
    }
}

/// Queue-dwell meter of one shard's inbox ring (from the transport
/// plane's enqueue/dequeue stamps).
#[derive(Debug, Clone, Copy)]
pub struct LaneDwell {
    pub shard: usize,
    /// Messages the consumer took while stamping was enabled.
    pub messages: u64,
    /// Mean nanoseconds a message sat published in the ring.
    pub mean_dwell_us: f64,
}

/// What [`record`](crate::TracePlane) activity aggregated to: the
/// Section-5 phase breakdown per method, global phase-event counters and
/// the transport dwell meters.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// One breakdown per method that committed at least one span.
    pub methods: Vec<MethodBreakdown>,
    /// Total events recorded per phase, over every lane.
    pub phase_counts: Vec<(Phase, u64)>,
    /// Per-shard inbox dwell (empty unless the runtime enabled ring
    /// stamping — `TraceLevel::Full` on the batched-ring transport).
    pub transport_dwell: Vec<LaneDwell>,
}

impl TraceReport {
    /// The breakdown of one method, if it committed anything.
    pub fn method(&self, method: CcMethod) -> Option<&MethodBreakdown> {
        self.methods.iter().find(|m| m.method == method)
    }

    /// Total events recorded across all phases and lanes.
    pub fn events_recorded(&self) -> u64 {
        self.phase_counts.iter().map(|(_, n)| n).sum()
    }

    /// The Section-5-style breakdown table.
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        out.push_str("phase breakdown (µs means; S = sel + xport + qu/blk + exec + reply)\n");
        out.push_str(&format!(
            "{:<8} {:>7} {:>8} {:>8} {:>9} {:>9} {:>8} {:>9} {:>9} {:>9} {:>8}\n",
            "method",
            "spans",
            "sel",
            "xport",
            "qu/blk",
            "exec",
            "reply",
            "sum-S",
            "e2e",
            "p95-e2e",
            "restarts",
        ));
        for m in &self.methods {
            let label = match m.method {
                CcMethod::TwoPhaseLocking => "2PL",
                CcMethod::TimestampOrdering => "T/O",
                CcMethod::PrecedenceAgreement => "PA",
            };
            out.push_str(&format!(
                "{:<8} {:>7} {:>8.1} {:>8.1} {:>9.1} {:>9.1} {:>8.1} {:>9.1} {:>9.1} {:>9.1} {:>8}\n",
                label,
                m.spans(),
                m.segments[0].mean(),
                m.segments[1].mean(),
                m.segments[2].mean(),
                m.segments[3].mean(),
                m.segments[4].mean(),
                m.phase_sum_mean_us(),
                m.end_to_end_mean_us(),
                m.end_to_end.quantile(0.95),
                m.restart_overhead.count(),
            ));
        }
        for dwell in &self.transport_dwell {
            out.push_str(&format!(
                "shard {} inbox: {} msgs, mean ring dwell {:.1}µs\n",
                dwell.shard, dwell.messages, dwell.mean_dwell_us
            ));
        }
        out
    }
}

/// One reconstructed span: a labelled `[start, end]` interval in
/// nanoseconds on the shared clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub label: &'static str,
    pub start_nanos: u64,
    pub end_nanos: u64,
}

/// The span tree of one incarnation: the whole-lifetime root plus the
/// client-side segment children reconstructed from its boundary events.
#[derive(Debug, Clone)]
pub struct SpanTree {
    pub txn: u64,
    /// begin → terminal event, when both exist.
    pub root: Option<Span>,
    /// Consecutive boundary segments actually present in the recorder.
    pub children: Vec<Span>,
    /// Every event of this incarnation, in timestamp order (including
    /// shard-side context events).
    pub events: Vec<TraceEvent>,
}

/// Flight-recorder events grouped per transaction incarnation — the
/// collector's working form.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    per_txn: BTreeMap<u64, Vec<TraceEvent>>,
}

impl TraceLog {
    /// Group a snapshot by incarnation, each group sorted by timestamp.
    pub fn from_events(events: impl IntoIterator<Item = TraceEvent>) -> TraceLog {
        let mut per_txn: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
        for event in events {
            per_txn.entry(event.txn).or_default().push(event);
        }
        for events in per_txn.values_mut() {
            events.sort_by_key(|e| e.ts_nanos);
        }
        TraceLog { per_txn }
    }

    /// Incarnations with at least one event.
    pub fn txns(&self) -> impl Iterator<Item = u64> + '_ {
        self.per_txn.keys().copied()
    }

    /// Events of one incarnation (timestamp order), if recorded.
    pub fn events_of(&self, txn: u64) -> Option<&[TraceEvent]> {
        self.per_txn.get(&txn).map(Vec::as_slice)
    }

    /// Incarnations whose `Committed` event survived in the recorder.
    pub fn committed(&self) -> Vec<u64> {
        self.per_txn
            .iter()
            .filter(|(_, events)| events.iter().any(|e| e.phase == Phase::Committed))
            .map(|(txn, _)| *txn)
            .collect()
    }

    /// Restart events surviving in the recorder (rejected + deadlock).
    pub fn restart_events(&self) -> u64 {
        self.count_phase(Phase::RestartRejected) + self.count_phase(Phase::RestartDeadlock)
    }

    /// Events of one phase across all incarnations.
    pub fn count_phase(&self, phase: Phase) -> u64 {
        self.per_txn
            .values()
            .flatten()
            .filter(|e| e.phase == phase)
            .count() as u64
    }

    /// Build the span tree of one incarnation.
    pub fn span_tree(&self, txn: u64) -> Option<SpanTree> {
        let events = self.per_txn.get(&txn)?;
        let find = |phase: Phase| events.iter().find(|e| e.phase == phase).map(|e| e.ts_nanos);
        let begin = find(Phase::Begin);
        let terminal = events
            .iter()
            .filter(|e| e.phase.is_terminal())
            .map(|e| e.ts_nanos)
            .next_back();
        let root = match (begin, terminal) {
            (Some(start), Some(end)) => Some(Span {
                label: "incarnation",
                start_nanos: start,
                end_nanos: end,
            }),
            _ => None,
        };
        let boundaries = [
            (Phase::Begin, Phase::SelectionDone, "sel"),
            (Phase::SelectionDone, Phase::TransportEnqueued, "xport"),
            (Phase::TransportEnqueued, Phase::ExecutionStart, "qu/blk"),
            (Phase::ExecutionStart, Phase::CommitStart, "exec"),
            (Phase::CommitStart, Phase::Committed, "reply"),
        ];
        let children = boundaries
            .iter()
            .filter_map(|(from, to, label)| match (find(*from), find(*to)) {
                (Some(start), Some(end)) => Some(Span {
                    label,
                    start_nanos: start,
                    end_nanos: end,
                }),
                _ => None,
            })
            .collect();
        Some(SpanTree {
            txn,
            root,
            children,
            events: events.clone(),
        })
    }

    /// Consistency checks over every incarnation's *client-side* events
    /// (same-thread program order makes their timestamps authoritative):
    /// at most one `Begin` and one terminal event per incarnation, and no
    /// client-side event after the terminal one. Returns human-readable
    /// violations; an empty list means the log is consistent.
    pub fn lifecycle_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for (txn, events) in &self.per_txn {
            let client: Vec<&TraceEvent> =
                events.iter().filter(|e| e.phase.is_client_side()).collect();
            let begins = client.iter().filter(|e| e.phase == Phase::Begin).count();
            if begins > 1 {
                violations.push(format!(
                    "txn {txn}: {begins} Begin events (incarnation ids must be unique)"
                ));
            }
            let terminals = client.iter().filter(|e| e.phase.is_terminal()).count();
            if terminals > 1 {
                violations.push(format!("txn {txn}: {terminals} terminal events"));
            }
            if let Some(terminal) = client.iter().find(|e| e.phase.is_terminal()) {
                for late in client
                    .iter()
                    .filter(|e| e.ts_nanos > terminal.ts_nanos && !e.phase.is_terminal())
                {
                    violations.push(format!(
                        "txn {txn}: {} at {}ns after terminal {} at {}ns",
                        late.phase.name(),
                        late.ts_nanos,
                        terminal.phase.name(),
                        terminal.ts_nanos,
                    ));
                }
            }
        }
        violations
    }
}

/// Aggregate raw phase counters into `(Phase, count)` pairs.
pub(crate) fn phase_count_pairs(counts: [u64; NUM_PHASES]) -> Vec<(Phase, u64)> {
    Phase::ALL
        .iter()
        .map(|phase| (*phase, counts[*phase as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(txn: u64, ts: u64, phase: Phase) -> TraceEvent {
        TraceEvent {
            lane: 0,
            ts_nanos: ts,
            txn,
            phase,
            arg: 0,
        }
    }

    #[test]
    fn span_tree_telescopes_over_the_lifecycle() {
        let log = TraceLog::from_events([
            ev(7, 100, Phase::Begin),
            ev(7, 110, Phase::SelectionDone),
            ev(7, 130, Phase::TransportEnqueued),
            ev(7, 200, Phase::ExecutionStart),
            ev(7, 260, Phase::CommitStart),
            ev(7, 300, Phase::Committed),
        ]);
        let tree = log.span_tree(7).unwrap();
        let root = tree.root.unwrap();
        assert_eq!((root.start_nanos, root.end_nanos), (100, 300));
        assert_eq!(tree.children.len(), 5);
        // Children tile the root exactly.
        assert_eq!(tree.children.first().unwrap().start_nanos, 100);
        assert_eq!(tree.children.last().unwrap().end_nanos, 300);
        for pair in tree.children.windows(2) {
            assert_eq!(pair[0].end_nanos, pair[1].start_nanos);
        }
        assert_eq!(log.committed(), vec![7]);
        assert!(log.lifecycle_violations().is_empty());
    }

    #[test]
    fn violations_catch_duplicate_begin_and_post_terminal_events() {
        let log = TraceLog::from_events([
            ev(1, 10, Phase::Begin),
            ev(1, 20, Phase::Begin),
            ev(2, 10, Phase::Begin),
            ev(2, 30, Phase::Committed),
            ev(2, 40, Phase::CommitStart),
        ]);
        let violations = log.lifecycle_violations();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("2 Begin"));
        assert!(violations[1].contains("after terminal"));
    }

    #[test]
    fn breakdown_sums_telescope_exactly() {
        let mut breakdown = MethodBreakdown::new(CcMethod::TwoPhaseLocking);
        let t = SpanTimings {
            begin: 1_000,
            selection_done: 3_000,
            enqueued: 4_000,
            exec_start: 10_000,
            commit_start: 15_000,
            committed: 21_000,
        };
        breakdown.record_span(&t);
        assert_eq!(breakdown.spans(), 1);
        let sum = breakdown.phase_sum_mean_us();
        let e2e = breakdown.end_to_end_mean_us();
        assert!((sum - e2e).abs() < 1e-9, "sum {sum} vs e2e {e2e}");
        assert_eq!(e2e, 20.0);
    }
}
