//! The fixed-size record every traced thread writes: one lifecycle phase
//! of one transaction incarnation, stamped with the process-wide
//! monotonic clock ([`transport::stamp::now_nanos`]).
//!
//! Inside a [`crate::FlightRing`] slot an event is three data words —
//! timestamp, transaction id, and a packed `phase | arg` meta word — so a
//! write is a handful of relaxed stores and never allocates. The `arg`
//! carries phase-specific detail: the incarnation's attempt number on
//! [`Phase::Begin`], the chosen method (plus the selection-cache hit
//! flag) on [`Phase::SelectionDone`], batch or grant counts on the shard
//! phases.

/// Number of distinct lifecycle phases (the length of [`Phase::ALL`]).
pub const NUM_PHASES: usize = 15;

/// A lifecycle phase tag. The first group marks the client-side phase
/// *boundaries* whose consecutive differences telescope exactly over an
/// incarnation's begin→commit interval; the second group is shard- and
/// detector-side context (batch receipt, grants, victims) that fills in
/// the span tree without affecting the client-side sums.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Client: an incarnation was admitted (`arg` = attempt number).
    Begin = 0,
    /// Client: the CC method is chosen (`arg` = method code, bit 8 set on
    /// a selection-cache hit).
    SelectionDone = 1,
    /// Client: the access fan-out is enqueued on the shard rings
    /// (`arg` = number of request messages sent).
    TransportEnqueued = 2,
    /// Client: every first grant arrived; execution begins.
    ExecutionStart = 3,
    /// Client: a PA backoff round was absorbed while waiting.
    BackoffRound = 4,
    /// Client: commit entered (releases about to be enqueued).
    CommitStart = 5,
    /// Client: all locks released, the incarnation is durable.
    Committed = 6,
    /// Client: the incarnation restarts after a T/O rejection.
    RestartRejected = 7,
    /// Client: the incarnation restarts as a deadlock victim.
    RestartDeadlock = 8,
    /// Client: the transaction aborted for good (`arg` = 1 when the
    /// user's closure aborted, 0 otherwise).
    Aborted = 9,
    /// Shard: a drained command batch was received (`arg` = messages in
    /// the batch, `txn` = the first message's transaction).
    ShardRecv = 10,
    /// Shard: grants issued while folding a batch (`arg` = grant count,
    /// `txn` = the last granted transaction).
    Granted = 11,
    /// Detector: a deadlock victim was signalled (`txn` = the victim).
    Victim = 12,
    /// Client: an invariant-confluent transaction was applied through the
    /// coordination-avoidance bypass — no grants, no queue time
    /// (`arg` = number of ops applied).
    FastPathApplied = 13,
    /// Client: a read-only transaction was served from the item version
    /// chains at the global read watermark — no grants, no wait edges, no
    /// restart exposure (`arg` = number of items read).
    SnapshotRead = 14,
}

impl Phase {
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Begin,
        Phase::SelectionDone,
        Phase::TransportEnqueued,
        Phase::ExecutionStart,
        Phase::BackoffRound,
        Phase::CommitStart,
        Phase::Committed,
        Phase::RestartRejected,
        Phase::RestartDeadlock,
        Phase::Aborted,
        Phase::ShardRecv,
        Phase::Granted,
        Phase::Victim,
        Phase::FastPathApplied,
        Phase::SnapshotRead,
    ];

    /// Decode a raw discriminant (a torn ring slot yields `None`).
    pub fn from_u8(raw: u8) -> Option<Phase> {
        Phase::ALL.get(raw as usize).copied()
    }

    /// Stable lower-case name (used in postmortem JSONL and tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Begin => "begin",
            Phase::SelectionDone => "selection-done",
            Phase::TransportEnqueued => "transport-enqueued",
            Phase::ExecutionStart => "execution-start",
            Phase::BackoffRound => "backoff-round",
            Phase::CommitStart => "commit-start",
            Phase::Committed => "committed",
            Phase::RestartRejected => "restart-rejected",
            Phase::RestartDeadlock => "restart-deadlock",
            Phase::Aborted => "aborted",
            Phase::ShardRecv => "shard-recv",
            Phase::Granted => "granted",
            Phase::Victim => "victim",
            Phase::FastPathApplied => "fastpath-applied",
            Phase::SnapshotRead => "snapshot-read",
        }
    }

    /// True for phases the *client* thread records for its own
    /// transaction — the ones whose per-transaction order is guaranteed
    /// by program order on one thread.
    pub fn is_client_side(self) -> bool {
        !matches!(self, Phase::ShardRecv | Phase::Granted | Phase::Victim)
    }

    /// True for the three ways an incarnation stops producing client-side
    /// events (commit, abort, restart into a *new* incarnation id).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Phase::Committed | Phase::Aborted | Phase::RestartRejected | Phase::RestartDeadlock
        )
    }
}

/// Bit set in [`Phase::SelectionDone`]'s `arg` when the dynamic selector
/// answered from its cache (the low byte is the method code).
pub const SELECTION_CACHE_HIT: u32 = 1 << 8;

/// One decoded flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The lane (ring) the event was written to: shard lanes first, then
    /// client lanes.
    pub lane: u32,
    /// Nanoseconds on the process-wide monotonic clock.
    pub ts_nanos: u64,
    /// The transaction incarnation (incarnation ids are never reused, so
    /// the id is its own incarnation tag).
    pub txn: u64,
    /// Lifecycle phase.
    pub phase: Phase,
    /// Phase-specific detail (see [`Phase`]).
    pub arg: u32,
}

/// Pack `phase` and `arg` into the single meta word a ring slot stores.
#[inline]
pub(crate) fn pack_meta(phase: Phase, arg: u32) -> u64 {
    (phase as u64) | ((arg as u64) << 32)
}

/// Inverse of [`pack_meta`]; `None` when the phase byte is torn garbage.
pub(crate) fn unpack_meta(meta: u64) -> Option<(Phase, u32)> {
    Phase::from_u8((meta & 0xff) as u8).map(|phase| (phase, (meta >> 32) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_packing_round_trips_every_phase() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(*phase as usize, i, "ALL is in discriminant order");
            let meta = pack_meta(*phase, 0xdead_beef);
            assert_eq!(unpack_meta(meta), Some((*phase, 0xdead_beef)));
        }
        assert_eq!(unpack_meta(0xff), None, "garbage phase byte is rejected");
    }
}
