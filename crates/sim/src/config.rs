//! Simulation configuration: the paper's "relevant system parameters".

use dbmodel::{CcMethod, ReplicationPolicy, Value};
use network::DelaySpec;
use simkit::time::Duration;
use unified_cc::EnforcementMode;

/// How concurrency-control methods are assigned to transactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MethodPolicy {
    /// Every transaction uses the same method (static concurrency control).
    Static(CcMethod),
    /// Each transaction independently picks 2PL with probability `p_2pl`,
    /// T/O with probability `p_to`, and PA otherwise.
    Mix {
        /// Probability of 2PL.
        p_2pl: f64,
        /// Probability of T/O.
        p_to: f64,
    },
    /// Dynamic selection with the STL criterion (Section 5).
    DynamicStl,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// RNG seed; equal seeds reproduce identical runs.
    pub seed: u64,
    /// Number of computer sites.
    pub num_sites: u32,
    /// Number of logical data items.
    pub num_items: u64,
    /// How logical items are replicated across sites.
    pub replication: ReplicationPolicy,
    /// System-wide transaction arrival rate λ, in transactions per second
    /// (parameter (1) of the paper's list).
    pub arrival_rate: f64,
    /// Number of logical items accessed per transaction, the paper's `st`
    /// (parameter (4)).
    pub txn_size: usize,
    /// Probability that an accessed item is read rather than written
    /// (parameter (2)).
    pub read_fraction: f64,
    /// Zipfian skew of item selection; 0 = uniform.
    pub access_skew: f64,
    /// Mean of the (exponential) local computing time.
    pub local_compute: Duration,
    /// Transmission delay between co-located request issuer and queue manager.
    pub local_delay: DelaySpec,
    /// Transmission delay between distinct sites (parameter (3)).
    pub remote_delay: DelaySpec,
    /// Delay before an aborted transaction is resubmitted (parameter (5),
    /// the cost of restarts).
    pub restart_delay: Duration,
    /// Period of the global deadlock scan (parameter (6)).
    pub deadlock_scan_period: Duration,
    /// PA backoff interval `INT`, in timestamp units (microseconds).
    pub pa_backoff_interval: u64,
    /// Semi-lock protocol (the paper's proposal) or lock-everything
    /// enforcement (the ablation baseline).
    pub enforcement: EnforcementMode,
    /// How methods are assigned to transactions.
    pub method_policy: MethodPolicy,
    /// Number of transactions to generate.
    pub num_transactions: usize,
    /// Initial value of every physical item.
    pub initial_value: Value,
    /// Hard cap on simulated time; the run stops even if transactions remain.
    pub max_sim_time: Duration,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            num_sites: 4,
            num_items: 200,
            replication: ReplicationPolicy::SingleCopy,
            arrival_rate: 50.0,
            txn_size: 4,
            read_fraction: 0.6,
            access_skew: 0.0,
            local_compute: Duration::from_millis(5),
            local_delay: DelaySpec::Uniform(50, 200),
            remote_delay: DelaySpec::Uniform(1_000, 4_000),
            restart_delay: Duration::from_millis(10),
            deadlock_scan_period: Duration::from_millis(50),
            pa_backoff_interval: 1_000,
            enforcement: EnforcementMode::SemiLock,
            method_policy: MethodPolicy::Static(CcMethod::TwoPhaseLocking),
            num_transactions: 1_000,
            initial_value: 100,
            max_sim_time: Duration::from_secs(3_600),
        }
    }
}

impl SimConfig {
    /// Convenience: the default configuration with a different method policy.
    pub fn with_policy(policy: MethodPolicy) -> Self {
        SimConfig {
            method_policy: policy,
            ..SimConfig::default()
        }
    }

    /// Validate the configuration, returning a human-readable complaint for
    /// the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sites == 0 {
            return Err("num_sites must be at least 1".into());
        }
        if self.num_items == 0 {
            return Err("num_items must be at least 1".into());
        }
        if self.txn_size == 0 {
            return Err("txn_size must be at least 1".into());
        }
        if self.txn_size as u64 > self.num_items {
            return Err(format!(
                "txn_size ({}) cannot exceed num_items ({})",
                self.txn_size, self.num_items
            ));
        }
        if !(self.arrival_rate > 0.0 && self.arrival_rate.is_finite()) {
            return Err("arrival_rate must be positive and finite".into());
        }
        if !(0.0..=1.0).contains(&self.read_fraction) {
            return Err("read_fraction must be within [0, 1]".into());
        }
        if self.access_skew < 0.0 || !self.access_skew.is_finite() {
            return Err("access_skew must be a finite non-negative number".into());
        }
        if let MethodPolicy::Mix { p_2pl, p_to } = self.method_policy {
            if !(0.0..=1.0).contains(&p_2pl) || !(0.0..=1.0).contains(&p_to) || p_2pl + p_to > 1.0 {
                return Err("Mix probabilities must be in [0,1] and sum to at most 1".into());
            }
        }
        if self.num_transactions == 0 {
            return Err("num_transactions must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SimConfig::default().validate(), Ok(()));
    }

    #[test]
    fn with_policy_overrides_only_policy() {
        let c = SimConfig::with_policy(MethodPolicy::DynamicStl);
        assert_eq!(c.method_policy, MethodPolicy::DynamicStl);
        assert_eq!(c.num_sites, SimConfig::default().num_sites);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = [
            SimConfig {
                num_sites: 0,
                ..SimConfig::default()
            },
            SimConfig {
                txn_size: 0,
                ..SimConfig::default()
            },
            SimConfig {
                arrival_rate: 0.0,
                ..SimConfig::default()
            },
            SimConfig {
                read_fraction: 1.5,
                ..SimConfig::default()
            },
            SimConfig {
                method_policy: MethodPolicy::Mix {
                    p_2pl: 0.8,
                    p_to: 0.5,
                },
                ..SimConfig::default()
            },
            SimConfig {
                num_transactions: 0,
                ..SimConfig::default()
            },
            SimConfig {
                access_skew: f64::NAN,
                ..SimConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err());
        }

        let c = SimConfig {
            txn_size: 1000,
            num_items: 10,
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("txn_size"));
    }
}
