//! The open (Poisson-arrival) workload generator.
//!
//! Transactions arrive as a Poisson process of rate λ. Each transaction
//! accesses `txn_size` distinct logical items drawn uniformly or Zipf-skewed
//! from the catalogue; each accessed item is independently a read with
//! probability `read_fraction`, otherwise a write. Transactions originate at
//! a uniformly chosen site.

use dbmodel::{LogicalItemId, SiteId};
use simkit::dist::{Distribution, Exponential, Zipfian};
use simkit::rng::SimRng;
use simkit::time::{Duration, SimTime};

use crate::config::SimConfig;

/// One generated transaction, before it is bound to a concurrency-control
/// method and transaction id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadTxn {
    /// Submission time.
    pub arrival: SimTime,
    /// Originating site (where its request issuer runs).
    pub origin: SiteId,
    /// Logical items read.
    pub reads: Vec<LogicalItemId>,
    /// Logical items written.
    pub writes: Vec<LogicalItemId>,
}

impl WorkloadTxn {
    /// Number of items accessed (the paper's transaction size `st`).
    pub fn size(&self) -> usize {
        self.reads.len() + self.writes.len()
    }
}

/// Generates the full arrival sequence of a run.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: SimRng,
    inter_arrival: Exponential,
    zipf: Option<Zipfian>,
    num_items: u64,
    num_sites: u32,
    txn_size: usize,
    read_fraction: f64,
}

impl WorkloadGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: &SimConfig) -> Self {
        let rng = SimRng::new(config.seed).fork(0xA11CE);
        let zipf = if config.access_skew > 0.0 {
            Some(Zipfian::new(config.num_items as usize, config.access_skew))
        } else {
            None
        };
        WorkloadGenerator {
            rng,
            inter_arrival: Exponential::with_rate(config.arrival_rate),
            zipf,
            num_items: config.num_items,
            num_sites: config.num_sites,
            txn_size: config.txn_size,
            read_fraction: config.read_fraction,
        }
    }

    /// Generate `count` transactions with increasing arrival times.
    pub fn generate(&mut self, count: usize) -> Vec<WorkloadTxn> {
        let mut out = Vec::with_capacity(count);
        let mut clock = SimTime::ZERO;
        for _ in 0..count {
            let gap = self.inter_arrival.sample(&mut self.rng);
            clock += Duration::from_secs_f64(gap);
            out.push(self.one_txn(clock));
        }
        out
    }

    fn one_txn(&mut self, arrival: SimTime) -> WorkloadTxn {
        let origin = SiteId(self.rng.next_below(self.num_sites as u64) as u32);
        let items = self.pick_items();
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for item in items {
            if self.rng.next_bool(self.read_fraction) {
                reads.push(item);
            } else {
                writes.push(item);
            }
        }
        // Every transaction must access at least one item; if the coin flips
        // made it empty (cannot happen — items are partitioned, not dropped),
        // nothing to fix. But a pure-read split of size 0 writes is fine.
        WorkloadTxn {
            arrival,
            origin,
            reads,
            writes,
        }
    }

    fn pick_items(&mut self) -> Vec<LogicalItemId> {
        let want = self.txn_size.min(self.num_items as usize);
        match &self.zipf {
            None => self
                .rng
                .sample_distinct(self.num_items as usize, want)
                .into_iter()
                .map(|i| LogicalItemId(i as u64))
                .collect(),
            Some(z) => {
                // Rejection-sample distinct items under the skewed law.
                let mut chosen = Vec::with_capacity(want);
                let mut guard = 0;
                while chosen.len() < want && guard < want * 1000 {
                    guard += 1;
                    let candidate = LogicalItemId(z.sample_index(&mut self.rng) as u64);
                    if !chosen.contains(&candidate) {
                        chosen.push(candidate);
                    }
                }
                // Top up deterministically if rejection sampling starved
                // (extremely skewed distributions over tiny catalogues).
                let mut next = 0u64;
                while chosen.len() < want {
                    let candidate = LogicalItemId(next);
                    if !chosen.contains(&candidate) {
                        chosen.push(candidate);
                    }
                    next += 1;
                }
                chosen
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SimConfig {
        SimConfig {
            num_items: 100,
            num_sites: 4,
            txn_size: 5,
            read_fraction: 0.7,
            arrival_rate: 100.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn arrivals_are_increasing_and_rate_is_close() {
        let mut g = WorkloadGenerator::new(&config());
        let txns = g.generate(5_000);
        assert_eq!(txns.len(), 5_000);
        for pair in txns.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        let span = txns.last().unwrap().arrival.as_secs_f64();
        let rate = txns.len() as f64 / span;
        assert!((rate - 100.0).abs() < 10.0, "empirical rate {rate}");
    }

    #[test]
    fn transactions_have_requested_size_and_distinct_items() {
        let mut g = WorkloadGenerator::new(&config());
        for txn in g.generate(500) {
            assert_eq!(txn.size(), 5);
            let mut all: Vec<_> = txn.reads.iter().chain(txn.writes.iter()).collect();
            all.sort();
            all.dedup();
            assert_eq!(all.len(), 5, "items must be distinct");
            assert!(all.iter().all(|i| i.0 < 100));
            assert!(txn.origin.0 < 4);
        }
    }

    #[test]
    fn read_fraction_is_respected_on_average() {
        let mut g = WorkloadGenerator::new(&config());
        let txns = g.generate(2_000);
        let reads: usize = txns.iter().map(|t| t.reads.len()).sum();
        let total: usize = txns.iter().map(|t| t.size()).sum();
        let frac = reads as f64 / total as f64;
        assert!((frac - 0.7).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn same_seed_reproduces_same_workload() {
        let a = WorkloadGenerator::new(&config()).generate(200);
        let b = WorkloadGenerator::new(&config()).generate(200);
        assert_eq!(a, b);
        let mut cfg2 = config();
        cfg2.seed = 43;
        let c = WorkloadGenerator::new(&cfg2).generate(200);
        assert_ne!(a, c);
    }

    #[test]
    fn skewed_access_prefers_hot_items() {
        let mut cfg = config();
        cfg.access_skew = 1.2;
        cfg.txn_size = 2;
        let mut g = WorkloadGenerator::new(&cfg);
        let txns = g.generate(3_000);
        let hot = txns
            .iter()
            .flat_map(|t| t.reads.iter().chain(t.writes.iter()))
            .filter(|i| i.0 < 10)
            .count();
        let total: usize = txns.iter().map(|t| t.size()).sum();
        assert!(
            hot as f64 / total as f64 > 0.3,
            "hot items should dominate: {hot}/{total}"
        );
    }

    #[test]
    fn txn_size_clamped_to_catalogue() {
        let mut cfg = config();
        cfg.num_items = 3;
        cfg.txn_size = 10;
        let mut g = WorkloadGenerator::new(&cfg);
        let txns = g.generate(10);
        assert!(txns.iter().all(|t| t.size() == 3));
    }
}
