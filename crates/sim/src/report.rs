//! Per-run summary consumed by the experiment binaries and the tests.

use std::collections::BTreeMap;

use dbmodel::{CcMethod, LogSet, TxnId};
use metrics::SimMetrics;
use network::MsgStats;
use sercheck::SerializabilityError;

/// A compact per-method summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// The method.
    pub method: CcMethod,
    /// Committed transactions that ran under this method.
    pub committed: u64,
    /// Mean system time in seconds.
    pub mean_system_time: f64,
    /// 95th-percentile system time in seconds.
    pub p95_system_time: f64,
    /// Restarts caused by T/O rejections.
    pub rejections: u64,
    /// Restarts caused by deadlock aborts.
    pub deadlock_aborts: u64,
    /// PA backoff rounds.
    pub backoff_rounds: u64,
}

/// The result of one simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Full metric collection.
    pub metrics: SimMetrics,
    /// Message accounting.
    pub messages: MsgStats,
    /// The per-item implementation logs of the execution.
    pub logs: LogSet,
    /// Number of workload transactions that committed.
    pub committed: usize,
    /// Number of workload transactions submitted.
    pub submitted: usize,
    /// How many transactions were assigned each method.
    pub selection_counts: BTreeMap<CcMethod, u64>,
    serializability: Result<Vec<TxnId>, SerializabilityError>,
}

impl SimReport {
    /// Assemble a report (used by the driver).
    pub fn new(
        metrics: SimMetrics,
        messages: MsgStats,
        logs: LogSet,
        serializability: Result<Vec<TxnId>, SerializabilityError>,
        committed: usize,
        submitted: usize,
        selection_counts: BTreeMap<CcMethod, u64>,
    ) -> Self {
        SimReport {
            metrics,
            messages,
            logs,
            committed,
            submitted,
            selection_counts,
            serializability,
        }
    }

    /// The serializability verdict for the whole execution: a serialization
    /// order on success, a conflict-graph cycle on failure.
    pub fn serializable(&self) -> &Result<Vec<TxnId>, SerializabilityError> {
        &self.serializability
    }

    /// Mean system time over all committed transactions, in seconds (the
    /// paper's `S`).
    pub fn mean_system_time(&self) -> f64 {
        self.metrics.mean_system_time()
    }

    /// Committed transactions per simulated second.
    pub fn throughput(&self) -> f64 {
        self.metrics.commit_throughput()
    }

    /// Messages sent per committed transaction.
    pub fn messages_per_commit(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.messages.total() as f64 / self.committed as f64
        }
    }

    /// Total restarts over all methods.
    pub fn total_restarts(&self) -> u64 {
        CcMethod::ALL
            .iter()
            .map(|&m| self.metrics.method(m).restarts())
            .sum()
    }

    /// Total deadlock aborts over all methods.
    pub fn total_deadlocks(&self) -> u64 {
        CcMethod::ALL
            .iter()
            .map(|&m| self.metrics.method(m).deadlock_aborts.get())
            .sum()
    }

    /// One summary row per method that committed at least one transaction.
    pub fn method_rows(&self) -> Vec<MethodReport> {
        CcMethod::ALL
            .iter()
            .map(|&method| {
                let stats = self.metrics.method(method);
                MethodReport {
                    method,
                    committed: stats.committed.get(),
                    mean_system_time: stats.mean_system_time(),
                    p95_system_time: stats.system_time.quantile(0.95),
                    rejections: stats.rejections.get(),
                    deadlock_aborts: stats.deadlock_aborts.get(),
                    backoff_rounds: stats.backoff_rounds.get(),
                }
            })
            .filter(|r| r.committed > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::time::{Duration, SimTime};

    fn report_with(committed: usize) -> SimReport {
        let mut metrics = SimMetrics::new();
        metrics.set_time_span(SimTime::ZERO, SimTime::from_secs(10));
        for _ in 0..committed {
            metrics.record_commit(CcMethod::TwoPhaseLocking, Duration::from_millis(20));
        }
        SimReport::new(
            metrics,
            MsgStats::default(),
            LogSet::new(),
            Ok(vec![]),
            committed,
            committed,
            BTreeMap::new(),
        )
    }

    #[test]
    fn messages_per_commit_handles_zero_commits() {
        let r = report_with(0);
        assert_eq!(r.messages_per_commit(), 0.0);
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn method_rows_skip_unused_methods() {
        let r = report_with(5);
        let rows = r.method_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].method, CcMethod::TwoPhaseLocking);
        assert_eq!(rows[0].committed, 5);
        assert!(rows[0].mean_system_time > 0.0);
    }

    #[test]
    fn totals_aggregate_over_methods() {
        let mut metrics = SimMetrics::new();
        metrics.set_time_span(SimTime::ZERO, SimTime::from_secs(1));
        metrics.record_restart(
            CcMethod::TimestampOrdering,
            metrics::TxnOutcome::RejectedRestart,
        );
        metrics.record_restart(
            CcMethod::TwoPhaseLocking,
            metrics::TxnOutcome::DeadlockRestart,
        );
        let r = SimReport::new(
            metrics,
            MsgStats::default(),
            LogSet::new(),
            Ok(vec![]),
            0,
            0,
            BTreeMap::new(),
        );
        assert_eq!(r.total_restarts(), 2);
        assert_eq!(r.total_deadlocks(), 1);
    }
}
