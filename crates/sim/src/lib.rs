//! # sim — the distributed-DBMS simulator and experiment runner
//!
//! The paper's evaluation (Section 5, referencing the authors' simulation
//! study) sweeps transaction arrival rate and transaction size and compares
//! mean transaction system time `S`, restart/deadlock behaviour and message
//! cost across 2PL, T/O, PA and the dynamic (STL-selected) mix. This crate
//! provides the simulator those sweeps run on:
//!
//! * [`config`] — every knob the paper names as a relevant system parameter:
//!   arrival rate, read/write mix, transmission delay, transaction size,
//!   restart cost, deadlock-detection period, plus the replication layout and
//!   the method-assignment policy (static, probabilistic mix, or STL-dynamic);
//! * [`workload`] — the open Poisson workload generator;
//! * [`driver`] — the deterministic discrete-event loop that connects the
//!   request issuers and queue managers from `unified-cc` through the
//!   simulated network, runs the periodic deadlock detector, collects
//!   metrics, and checks the resulting execution with the serializability
//!   oracle;
//! * [`report`] — the per-run summary consumed by the experiment binaries.

pub mod config;
pub mod driver;
pub mod report;
pub mod workload;

pub use config::{MethodPolicy, SimConfig};
pub use driver::Simulation;
pub use report::{MethodReport, SimReport};
pub use workload::{WorkloadGenerator, WorkloadTxn};
