//! The discrete-event simulation driver.
//!
//! The driver owns one [`QueueManager`] per site, one [`RequestIssuer`] per
//! live transaction incarnation, the simulated network, the metrics
//! collection and the execution logs. It advances a deterministic event
//! queue whose events are transaction arrivals, message deliveries, ends of
//! local-computation phases, restart timers and periodic deadlock scans.
//!
//! Restarted transactions (T/O rejections, 2PL deadlock victims) are
//! re-incarnated under a **fresh transaction id** so that messages still in
//! flight for the aborted incarnation can never be confused with the new
//! attempt; metrics are nevertheless attributed to the original submission
//! (system time is measured from the first arrival).

use std::collections::BTreeMap;

use dbmodel::{
    AccessMode, Catalog, CcMethod, LogSet, PhysicalItemId, SiteId, Timestamp, Transaction, TsTuple,
    TxnId,
};
use metrics::{SimMetrics, TxnOutcome};
use network::{Envelope, LatencyModel, MsgCategory, NetworkModel};
use pam::{ReplyMsg, RequestMsg};
use selection::StlSelector;
use simkit::dist::{Distribution, Exponential};
use simkit::event::EventQueue;
use simkit::rng::SimRng;
use simkit::time::SimTime;
use unified_cc::{QmEvent, QueueManager, RequestIssuer, RiAction, RiOutput, WaitForGraph};

use crate::config::{MethodPolicy, SimConfig};
use crate::report::SimReport;
use crate::workload::{WorkloadGenerator, WorkloadTxn};

/// Network payloads exchanged in the simulation.
#[derive(Debug, Clone)]
enum NetMsg {
    /// Request-issuer → queue-manager traffic; `origin` is the issuing site.
    ToQm { origin: SiteId, msg: RequestMsg },
    /// Queue-manager → request-issuer traffic.
    ToRi(ReplyMsg),
}

/// Simulation events.
#[derive(Debug, Clone)]
enum Event {
    /// Arrival of workload transaction `root`.
    Arrival { root: usize },
    /// Delivery of a network message.
    Deliver(Envelope<NetMsg>),
    /// End of the local computing phase of an incarnation.
    ExecutionDone(TxnId),
    /// Resubmission of workload transaction `root` after an abort.
    Restart { root: usize, method: CcMethod },
    /// Periodic global deadlock scan.
    DeadlockScan,
}

/// Book-keeping for one live incarnation.
struct LiveTxn {
    ri: RequestIssuer,
    root: usize,
    first_arrival: SimTime,
}

/// The simulation engine.
pub struct Simulation {
    config: SimConfig,
    catalog: Catalog,
    workload: Vec<WorkloadTxn>,
    events: EventQueue<Event>,
    qms: BTreeMap<SiteId, QueueManager>,
    live: BTreeMap<TxnId, LiveTxn>,
    network: NetworkModel,
    metrics: SimMetrics,
    logs: LogSet,
    rng: SimRng,
    compute_dist: Exponential,
    selector: StlSelector,
    next_txn_id: u64,
    ts_counter: u64,
    committed_roots: usize,
    grant_times: BTreeMap<(TxnId, PhysicalItemId), SimTime>,
    selection_counts: BTreeMap<CcMethod, u64>,
}

impl Simulation {
    /// Build a simulation from a configuration. Panics on an invalid
    /// configuration (call [`SimConfig::validate`] first to get the error).
    pub fn new(config: SimConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid simulation config: {e}"));
        let catalog = Catalog::generate(config.num_sites, config.num_items, config.replication);
        let mut workload_gen = WorkloadGenerator::new(&config);
        let workload = workload_gen.generate(config.num_transactions);
        let rng = SimRng::new(config.seed).fork(0xD217E);
        let latency = LatencyModel::new(
            config.local_delay,
            config.remote_delay,
            SimRng::new(config.seed).fork(0x4E7),
        );
        let qms = catalog
            .sites()
            .iter()
            .map(|&s| {
                (
                    s,
                    QueueManager::from_catalog(
                        s,
                        &catalog,
                        config.initial_value,
                        config.enforcement,
                    ),
                )
            })
            .collect();
        let mut events = EventQueue::new();
        for (root, txn) in workload.iter().enumerate() {
            events.schedule(txn.arrival, Event::Arrival { root });
        }
        events.schedule(
            SimTime::ZERO + config.deadlock_scan_period,
            Event::DeadlockScan,
        );
        let compute_mean = config.local_compute.as_secs_f64().max(1e-9);
        Simulation {
            catalog,
            workload,
            events,
            qms,
            live: BTreeMap::new(),
            network: NetworkModel::new(latency),
            metrics: SimMetrics::new(),
            logs: LogSet::new(),
            rng,
            compute_dist: Exponential::with_mean(compute_mean),
            selector: StlSelector::new(),
            next_txn_id: 0,
            ts_counter: 0,
            committed_roots: 0,
            grant_times: BTreeMap::new(),
            selection_counts: BTreeMap::new(),
            config,
        }
    }

    /// Run the simulation to completion and produce the report.
    pub fn run(config: SimConfig) -> SimReport {
        let mut sim = Simulation::new(config);
        sim.run_to_completion();
        sim.into_report()
    }

    /// Advance until every workload transaction has committed, the event
    /// queue is exhausted, or the simulated-time cap is reached.
    pub fn run_to_completion(&mut self) {
        let deadline = SimTime::ZERO + self.config.max_sim_time;
        while let Some(scheduled) = self.events.pop() {
            if scheduled.at > deadline {
                break;
            }
            self.handle_event(scheduled.at, scheduled.payload);
            if self.committed_roots >= self.workload.len() {
                break;
            }
        }
        let end = self.events.now();
        self.metrics.set_time_span(SimTime::ZERO, end);
    }

    /// The catalog used by this run.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Diagnostics: the incarnations still live (not yet fully released),
    /// with their per-item progress. Useful when a run does not drain.
    pub fn live_transactions(&self) -> Vec<String> {
        self.live
            .iter()
            .map(|(txn, live)| {
                format!(
                    "{txn} ({}) {}",
                    live.ri.txn().method,
                    live.ri.progress_summary()
                )
            })
            .collect()
    }

    /// Consume the simulation and produce its report.
    pub fn into_report(self) -> SimReport {
        let serializable = sercheck::check_serializable(&self.logs);
        SimReport::new(
            self.metrics,
            self.network.stats().clone(),
            self.logs,
            serializable,
            self.committed_roots,
            self.workload.len(),
            self.selection_counts,
        )
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle_event(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Arrival { root } => {
                let method = self.pick_method(root);
                self.launch_incarnation(now, root, method, now);
            }
            Event::Restart { root, method } => {
                let first_arrival = self.workload[root].arrival;
                self.launch_incarnation(now, root, method, first_arrival);
            }
            Event::Deliver(envelope) => match envelope.payload {
                NetMsg::ToQm { origin, msg } => self.deliver_to_qm(now, envelope.to, origin, msg),
                NetMsg::ToRi(reply) => self.deliver_to_ri(now, reply),
            },
            Event::ExecutionDone(txn) => {
                let output = match self.live.get_mut(&txn) {
                    Some(live) => live.ri.on_execution_done(),
                    None => return,
                };
                self.apply_ri_output(now, txn, output);
            }
            Event::DeadlockScan => {
                self.deadlock_scan(now);
                if self.committed_roots < self.workload.len() {
                    self.events
                        .schedule(now + self.config.deadlock_scan_period, Event::DeadlockScan);
                }
            }
        }
    }

    fn pick_method(&mut self, root: usize) -> CcMethod {
        let choice = match self.config.method_policy {
            MethodPolicy::Static(m) => m,
            MethodPolicy::Mix { p_2pl, p_to } => {
                let x = self.rng.next_f64();
                if x < p_2pl {
                    CcMethod::TwoPhaseLocking
                } else if x < p_2pl + p_to {
                    CcMethod::TimestampOrdering
                } else {
                    CcMethod::PrecedenceAgreement
                }
            }
            MethodPolicy::DynamicStl => {
                let spec = &self.workload[root];
                let txn = Transaction::builder(TxnId(u64::MAX), spec.origin)
                    .reads(spec.reads.iter().copied())
                    .writes(spec.writes.iter().copied())
                    .build();
                self.selector
                    .select(&txn, &self.catalog, &self.metrics)
                    .method
            }
        };
        *self.selection_counts.entry(choice).or_insert(0) += 1;
        choice
    }

    fn launch_incarnation(
        &mut self,
        now: SimTime,
        root: usize,
        method: CcMethod,
        first_arrival: SimTime,
    ) {
        let spec = self.workload[root].clone();
        self.next_txn_id += 1;
        let txn_id = TxnId(self.next_txn_id);
        // Timestamps follow simulated time but are strictly increasing across
        // incarnations, so a restarted T/O transaction always retries with a
        // larger timestamp.
        self.ts_counter = self.ts_counter.max(now.as_micros()) + 1;
        let ts = TsTuple::new(Timestamp(self.ts_counter), self.config.pa_backoff_interval);

        let txn = Transaction::builder(txn_id, spec.origin)
            .method(method)
            .reads(spec.reads.iter().copied())
            .writes(spec.writes.iter().copied())
            .build();
        let accesses: Vec<(PhysicalItemId, AccessMode)> = self
            .catalog
            .translate_txn(&txn)
            .expect("workload items exist in the catalog")
            .into_iter()
            .map(|op| (op.item, op.mode))
            .collect();
        let mut ri = RequestIssuer::new(txn, ts, accesses);
        let output = ri.start();
        self.live.insert(
            txn_id,
            LiveTxn {
                ri,
                root,
                first_arrival,
            },
        );
        self.apply_ri_output(now, txn_id, output);
    }

    fn deliver_to_qm(&mut self, now: SimTime, site: SiteId, origin: SiteId, msg: RequestMsg) {
        // Per-request acceptance accounting for the STL estimators: an Access
        // answered immediately with a reject/backoff is a denial, anything
        // else is an acceptance.
        let access_info = match &msg {
            RequestMsg::Access {
                txn, mode, method, ..
            } => Some((*txn, *mode, *method)),
            _ => None,
        };
        let output = {
            let qm = self.qms.get_mut(&site).expect("site exists");
            qm.handle(origin, &msg)
        };
        if let Some((txn, mode, method)) = access_info {
            let denied = output.replies.iter().any(|r| {
                r.txn() == txn && matches!(r, ReplyMsg::Reject { .. } | ReplyMsg::Backoff { .. })
            });
            self.metrics.record_request_outcome(method, mode, denied);
        }
        for event in &output.events {
            match *event {
                QmEvent::GrantIssued {
                    item, txn, access, ..
                } => {
                    self.metrics.record_grant(item, access);
                    self.grant_times.entry((txn, item)).or_insert(now);
                }
                QmEvent::Implemented {
                    item, txn, access, ..
                } => {
                    self.logs.record(item, txn, access);
                    if let Some(granted_at) = self.grant_times.remove(&(txn, item)) {
                        let method = self
                            .live
                            .get(&txn)
                            .map(|l| l.ri.txn().method)
                            .unwrap_or(CcMethod::TwoPhaseLocking);
                        self.metrics
                            .record_lock_hold(method, now - granted_at, false);
                    }
                }
            }
        }
        for reply in output.replies {
            let txn = reply.txn();
            let Some(dest) = self.live.get(&txn).map(|l| l.ri.txn().origin) else {
                continue;
            };
            let category = match reply {
                ReplyMsg::Ack { .. } => MsgCategory::Ack,
                ReplyMsg::Grant { .. } => MsgCategory::Grant,
                ReplyMsg::Reject { .. } => MsgCategory::Reject,
                ReplyMsg::Backoff { .. } => MsgCategory::Backoff,
            };
            let envelope = self
                .network
                .send(now, site, dest, category, NetMsg::ToRi(reply));
            let at = envelope.deliver_at;
            self.events.schedule(at, Event::Deliver(envelope));
        }
    }

    fn deliver_to_ri(&mut self, now: SimTime, reply: ReplyMsg) {
        let txn = reply.txn();
        let output = match self.live.get_mut(&txn) {
            Some(live) => live.ri.on_reply(&reply),
            // The incarnation was aborted; the stale reply is dropped.
            None => return,
        };
        self.apply_ri_output(now, txn, output);
    }

    fn apply_ri_output(&mut self, now: SimTime, txn: TxnId, output: RiOutput) {
        let (origin, method, root, first_arrival, accessed): (
            SiteId,
            CcMethod,
            usize,
            SimTime,
            Vec<(PhysicalItemId, AccessMode)>,
        ) = {
            let live = self.live.get(&txn).expect("live incarnation");
            (
                live.ri.txn().origin,
                live.ri.txn().method,
                live.root,
                live.first_arrival,
                live.ri.accessed_items().collect(),
            )
        };
        // Route outgoing messages.
        for msg in output.sends {
            let category = match msg {
                RequestMsg::Access { .. } => MsgCategory::Request,
                RequestMsg::UpdatedTs { .. } => MsgCategory::TimestampUpdate,
                RequestMsg::Release { .. } | RequestMsg::Demote { .. } => MsgCategory::Release,
                RequestMsg::Abort { .. } => MsgCategory::Abort,
            };
            let dest = msg.item().site;
            let envelope =
                self.network
                    .send(now, origin, dest, category, NetMsg::ToQm { origin, msg });
            let at = envelope.deliver_at;
            self.events.schedule(at, Event::Deliver(envelope));
        }
        // Apply lifecycle actions.
        let mut fully_released = false;
        for action in output.actions {
            match action {
                RiAction::StartExecution => {
                    let compute = simkit::time::Duration::from_secs_f64(
                        self.compute_dist.sample(&mut self.rng),
                    );
                    self.events
                        .schedule(now + compute, Event::ExecutionDone(txn));
                }
                RiAction::BackoffRound => {
                    self.metrics.record_backoff_round(method);
                }
                RiAction::Committed => {
                    self.metrics
                        .record_commit(method, now.saturating_since(first_arrival));
                    self.committed_roots += 1;
                }
                RiAction::FullyReleased => {
                    fully_released = true;
                }
                RiAction::Restart { rejected } => {
                    let outcome = if rejected {
                        TxnOutcome::RejectedRestart
                    } else {
                        TxnOutcome::DeadlockRestart
                    };
                    self.metrics.record_restart(method, outcome);
                    // Any lock the aborted incarnation held counts as an
                    // aborted hold.
                    for (item, _) in &accessed {
                        if let Some(granted_at) = self.grant_times.remove(&(txn, *item)) {
                            self.metrics
                                .record_lock_hold(method, now - granted_at, true);
                        }
                    }
                    self.events.schedule(
                        now + self.config.restart_delay,
                        Event::Restart { root, method },
                    );
                    self.live.remove(&txn);
                }
            }
        }
        if fully_released {
            // The incarnation holds nothing more; drop its issuer. (Release
            // messages produce no replies, so nothing will look it up again.)
            self.live.remove(&txn);
        }
    }

    fn deadlock_scan(&mut self, now: SimTime) {
        // Count currently blocked transactions (for the "blocked by
        // deadlocked transactions" observation of Section 5).
        let mut edges: Vec<(TxnId, TxnId)> = Vec::new();
        for qm in self.qms.values() {
            qm.wait_edges_into(&mut edges);
        }
        let waiting: std::collections::BTreeSet<TxnId> =
            edges.iter().map(|&(waiter, _)| waiter).collect();
        for _ in &waiting {
            self.metrics.record_blocked_observation();
        }
        let graph = WaitForGraph::from_edges(edges);
        let victims = graph.choose_victims(|txn| {
            self.live
                .get(&txn)
                .map(|l| l.ri.txn().method == CcMethod::TwoPhaseLocking)
                .unwrap_or(false)
        });
        for victim in victims {
            let output = match self.live.get_mut(&victim) {
                Some(live) => live.ri.abort_for_deadlock(),
                None => continue,
            };
            self.apply_ri_output(now, victim, output);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use network::DelaySpec;
    use simkit::time::Duration;

    fn small_config(policy: MethodPolicy) -> SimConfig {
        SimConfig {
            seed: 7,
            num_sites: 3,
            num_items: 60,
            arrival_rate: 200.0,
            txn_size: 3,
            read_fraction: 0.5,
            num_transactions: 300,
            local_compute: Duration::from_millis(2),
            local_delay: DelaySpec::Uniform(20, 100),
            remote_delay: DelaySpec::Uniform(200, 2_000),
            method_policy: policy,
            ..SimConfig::default()
        }
    }

    #[test]
    fn static_2pl_run_commits_everything_and_is_serializable() {
        let report = Simulation::run(small_config(MethodPolicy::Static(
            CcMethod::TwoPhaseLocking,
        )));
        assert_eq!(report.committed, report.submitted);
        assert!(report.serializable().is_ok(), "{:?}", report.serializable());
        assert!(report.metrics.mean_system_time() > 0.0);
        assert!(report.messages.total() > 0);
    }

    #[test]
    fn static_to_run_restarts_but_commits_everything() {
        let report = Simulation::run(small_config(MethodPolicy::Static(
            CcMethod::TimestampOrdering,
        )));
        assert_eq!(report.committed, report.submitted);
        assert!(report.serializable().is_ok());
        // Under contention some rejections must have occurred.
        assert!(
            report
                .metrics
                .method(CcMethod::TimestampOrdering)
                .restarts()
                > 0
        );
        // T/O never deadlocks.
        assert_eq!(
            report
                .metrics
                .method(CcMethod::TimestampOrdering)
                .deadlock_aborts
                .get(),
            0
        );
    }

    #[test]
    fn static_pa_run_never_restarts() {
        let report = Simulation::run(small_config(MethodPolicy::Static(
            CcMethod::PrecedenceAgreement,
        )));
        assert_eq!(report.committed, report.submitted);
        assert!(report.serializable().is_ok());
        assert_eq!(
            report
                .metrics
                .method(CcMethod::PrecedenceAgreement)
                .restarts(),
            0,
            "PA is restart-free (Corollary 1)"
        );
    }

    #[test]
    fn mixed_run_is_serializable_and_only_2pl_deadlocks() {
        let report = Simulation::run(small_config(MethodPolicy::Mix {
            p_2pl: 0.34,
            p_to: 0.33,
        }));
        assert_eq!(report.committed, report.submitted);
        assert!(report.serializable().is_ok());
        assert_eq!(
            report
                .metrics
                .method(CcMethod::TimestampOrdering)
                .deadlock_aborts
                .get(),
            0
        );
        assert_eq!(
            report
                .metrics
                .method(CcMethod::PrecedenceAgreement)
                .deadlock_aborts
                .get(),
            0
        );
    }

    #[test]
    fn dynamic_run_uses_all_methods_and_completes() {
        let report = Simulation::run(small_config(MethodPolicy::DynamicStl));
        assert_eq!(report.committed, report.submitted);
        assert!(report.serializable().is_ok());
        assert!(
            report.selection_counts.len() >= 2,
            "warm-up alone exercises several methods: {:?}",
            report.selection_counts
        );
    }

    #[test]
    fn same_seed_same_report_different_seed_differs() {
        let a = Simulation::run(small_config(MethodPolicy::Static(
            CcMethod::TwoPhaseLocking,
        )));
        let b = Simulation::run(small_config(MethodPolicy::Static(
            CcMethod::TwoPhaseLocking,
        )));
        assert_eq!(a.metrics.mean_system_time(), b.metrics.mean_system_time());
        assert_eq!(a.messages.total(), b.messages.total());
        let mut cfg = small_config(MethodPolicy::Static(CcMethod::TwoPhaseLocking));
        cfg.seed = 8;
        let c = Simulation::run(cfg);
        assert_ne!(a.metrics.mean_system_time(), c.metrics.mean_system_time());
    }
}
