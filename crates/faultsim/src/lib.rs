//! # faultsim — seeded deterministic fault injection for the message plane
//!
//! The runtime's "network" is the transport boundary between client
//! threads and shard threads: every protocol message a transaction sends
//! crosses it exactly once. This crate wraps that boundary with a fault
//! plane that can **drop**, **duplicate**, **delay/reorder** and
//! **partition** messages per link (one link per destination shard), and
//! **crash** shards at scheduled points — all driven by a
//! [`FaultSchedule`] derived from a single [`SimRng`] seed, so any
//! failing run is replayed by re-running the same seed.
//!
//! ## Message reliability classes
//!
//! Not every message may be faulted. `Release` and `Demote` carry the
//! *committed write* of a transaction whose client considers the commit
//! decided the moment they are sent (2PL/PA release is fire-and-forget);
//! dropping one would silently lose a committed write, and delaying a
//! `Demote` turns a bounded commit wait into a phantom failure while the
//! write still lands later. Both are therefore modeled as a **durable
//! commit channel**: never dropped, never delayed, and they pass through
//! partitions. `Access`, `UpdatedTs` and `Abort` are fair game — losing
//! or delaying them strands *uncommitted* state, which the runtime's
//! timeouts and the detector's stranded-transaction cleanup must (and,
//! under test, demonstrably do) recover.
//!
//! ## Crash model
//!
//! A crash is **partial amnesia over an outage**: the shard goes
//! unresponsive for the scheduled outage, then recovers having lost every
//! *ungranted* queue entry while keeping granted locks, implemented
//! values and the `R-TS`/`W-TS` thresholds — the durable-store framing in
//! which grants and implementations have hit stable storage but in-flight
//! admissions have not. Clients whose requests were wiped observe the
//! loss as a grant that never arrives and recover through the request
//! timeout.
//!
//! ## Determinism
//!
//! The *schedule* — fault rates, partition windows, crash points, and
//! every per-link decision stream — is a pure function of the seed.
//! Per-link decisions are serialized under a per-link lock, so the k-th
//! droppable message on a link always gets the k-th draw of that link's
//! forked stream. In a multi-threaded run the OS scheduler still decides
//! *which* message is k-th; single-threaded regression tests are exactly
//! reproducible, and multi-threaded sweeps reproduce the same fault
//! pressure and the same windows even when individual victims differ.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pam::RequestMsg;
use simkit::rng::SimRng;

/// Is this message on the durable commit channel (exempt from faults)?
///
/// See the crate docs: `Release` and `Demote` implement committed writes
/// whose clients no longer wait for an acknowledgement, so faulting them
/// would forge lost updates rather than recoverable chaos.
pub fn is_reliable(msg: &RequestMsg) -> bool {
    matches!(msg, RequestMsg::Release { .. } | RequestMsg::Demote { .. })
}

/// Intensity knobs from which a concrete [`FaultSchedule`] is derived.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Probability a droppable message is silently discarded.
    pub drop_rate: f64,
    /// Probability a droppable message is delivered twice.
    pub dup_rate: f64,
    /// Probability a droppable message is held back and released after
    /// [`FaultProfile::delay_span`] later sends on the same link
    /// (delay doubles as reordering: later messages overtake it).
    pub delay_rate: f64,
    /// How many subsequent sends on the link pass a delayed message.
    pub delay_span: u64,
    /// Partition windows per link (each buffers the link for
    /// [`FaultProfile::partition_len`] sends, then heals and flushes).
    pub partitions_per_link: u32,
    /// Length of each partition window, in sends on the link.
    pub partition_len: u64,
    /// Total shard crashes to schedule across all links.
    pub crashes: u32,
    /// How long a crashed shard stays unresponsive before recovering.
    pub crash_outage: Duration,
    /// Approximate sends per link the run is expected to make; partition
    /// windows and crash points are placed uniformly inside this horizon.
    pub horizon: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            delay_span: 8,
            partitions_per_link: 0,
            partition_len: 32,
            crashes: 0,
            crash_outage: Duration::from_millis(20),
            horizon: 512,
        }
    }
}

impl FaultProfile {
    /// A mixed-chaos profile drawn from `seed` itself: every fault class
    /// is armed with a seed-dependent intensity. Used by the seed-sweep
    /// property test so 200 seeds explore 200 different chaos mixes.
    pub fn sampled(seed: u64) -> FaultProfile {
        let mut rng = SimRng::new(seed).fork(0xF417);
        FaultProfile {
            drop_rate: rng.next_f64() * 0.10,
            dup_rate: rng.next_f64() * 0.10,
            delay_rate: rng.next_f64() * 0.10,
            delay_span: 2 + rng.next_below(12),
            partitions_per_link: rng.next_below(2) as u32,
            partition_len: 8 + rng.next_below(24),
            crashes: rng.next_below(3) as u32,
            crash_outage: Duration::from_millis(5 + rng.next_below(15)),
            horizon: 256,
        }
    }
}

/// A partition window on one link: sends in `[from, until)` (link-local
/// send counts) are buffered and flushed when the window heals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    pub from: u64,
    pub until: u64,
}

/// A scheduled crash: when the link's send counter reaches `at_send`,
/// the destination shard crashes for the schedule's outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    pub at_send: u64,
}

/// The concrete, fully materialized fault schedule for one run: rates
/// plus per-link partition windows and crash points, all derived from
/// one seed. `Display` prints everything needed to replay the run.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    profile: FaultProfile,
    partitions: Vec<Vec<PartitionWindow>>,
    crashes: Vec<Vec<CrashPoint>>,
}

impl FaultSchedule {
    /// Materialize the schedule `profile` implies for `num_links` links
    /// under `seed`. The same `(profile, seed, num_links)` triple always
    /// yields the identical schedule.
    pub fn generate(profile: FaultProfile, seed: u64, num_links: usize) -> FaultSchedule {
        let root = SimRng::new(seed);
        let mut partitions = vec![Vec::new(); num_links];
        let mut crashes = vec![Vec::new(); num_links];
        let horizon = profile.horizon.max(1);

        let mut part_rng = root.fork(1);
        for windows in partitions.iter_mut() {
            for _ in 0..profile.partitions_per_link {
                let from = 1 + part_rng.next_below(horizon);
                windows.push(PartitionWindow {
                    from,
                    until: from + profile.partition_len.max(1),
                });
            }
            windows.sort_by_key(|w| w.from);
        }

        let mut crash_rng = root.fork(2);
        for _ in 0..profile.crashes {
            if num_links == 0 {
                break;
            }
            let link = crash_rng.next_index(num_links);
            crashes[link].push(CrashPoint {
                at_send: 1 + crash_rng.next_below(horizon),
            });
        }
        for points in crashes.iter_mut() {
            points.sort_by_key(|c| c.at_send);
        }

        FaultSchedule {
            seed,
            profile,
            partitions,
            crashes,
        }
    }

    /// The seed the schedule was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The intensity profile the schedule was derived from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Number of links the schedule covers.
    pub fn num_links(&self) -> usize {
        self.partitions.len()
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = &self.profile;
        writeln!(
            f,
            "FaultSchedule {{ seed: {:#x}, drop: {:.3}, dup: {:.3}, delay: {:.3} (span {}), \
             outage: {:?}, horizon: {} }}",
            self.seed,
            p.drop_rate,
            p.dup_rate,
            p.delay_rate,
            p.delay_span,
            p.crash_outage,
            p.horizon
        )?;
        for (link, windows) in self.partitions.iter().enumerate() {
            if !windows.is_empty() {
                writeln!(f, "  link {link}: partitions {windows:?}")?;
            }
        }
        for (link, points) in self.crashes.iter().enumerate() {
            if !points.is_empty() {
                writeln!(f, "  link {link}: crashes {points:?}")?;
            }
        }
        Ok(())
    }
}

/// A crash signal the caller must act on: take the destination shard
/// down for `outage`, then recover it with partial amnesia.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal {
    pub outage: Duration,
}

/// Monotonic counters of every fault the plane actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Droppable messages silently discarded.
    pub dropped: u64,
    /// Droppable messages delivered twice.
    pub duplicated: u64,
    /// Droppable messages held back past later sends.
    pub delayed: u64,
    /// Messages buffered by a partition window.
    pub partitioned: u64,
    /// Crash signals handed to the caller.
    pub crashes: u64,
}

impl FaultCounters {
    /// Total faults of any class.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed + self.partitioned + self.crashes
    }
}

/// Per-link mutable state: the forked decision stream, the send counter
/// the schedule's windows are defined over, and the hold buffers.
#[derive(Debug)]
struct LinkState {
    rng: SimRng,
    sends: u64,
    /// Delayed messages with the send count at which they are released.
    held: Vec<(u64, RequestMsg)>,
    /// Messages buffered by the currently open partition window.
    partition_buf: Vec<RequestMsg>,
    /// Index of the next unconsumed partition window.
    next_partition: usize,
    /// Index of the next unfired crash point.
    next_crash: usize,
}

/// The live fault plane: a [`FaultSchedule`] plus the per-link runtime
/// state, shared by every client thread crossing the boundary.
///
/// Thread-safe; per-link decisions are serialized by a per-link lock so
/// the decision stream stays attached to the link's send order.
#[derive(Debug)]
pub struct FaultPlane {
    schedule: FaultSchedule,
    links: Vec<Mutex<LinkState>>,
    active: AtomicBool,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    partitioned: AtomicU64,
    crashes: AtomicU64,
}

impl FaultPlane {
    /// Arm the plane with a materialized schedule.
    pub fn new(schedule: FaultSchedule) -> FaultPlane {
        let root = SimRng::new(schedule.seed());
        let links = (0..schedule.num_links())
            .map(|link| {
                Mutex::new(LinkState {
                    rng: root.fork(0x11AA + link as u64),
                    sends: 0,
                    held: Vec::new(),
                    partition_buf: Vec::new(),
                    next_partition: 0,
                    next_crash: 0,
                })
            })
            .collect();
        FaultPlane {
            schedule,
            links,
            active: AtomicBool::new(true),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            partitioned: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
        }
    }

    /// The schedule the plane runs.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Pass one outbound message through the plane. Messages to deliver
    /// *now* (possibly none, possibly several: duplicates, released
    /// delays, healed partitions) are appended to `out` — all addressed
    /// to the same link. Returns a crash signal when the send crossed a
    /// scheduled crash point.
    pub fn on_send(
        &self,
        link: usize,
        msg: RequestMsg,
        out: &mut Vec<RequestMsg>,
    ) -> Option<CrashSignal> {
        if !self.active.load(Ordering::Acquire) || link >= self.links.len() {
            out.push(msg);
            return None;
        }
        let mut st = self.links[link].lock().expect("fault link poisoned");
        st.sends += 1;
        let now = st.sends;

        // Release delayed messages that have served their span.
        let mut i = 0;
        while i < st.held.len() {
            if st.held[i].0 <= now {
                let (_, held) = st.held.swap_remove(i);
                out.push(held);
            } else {
                i += 1;
            }
        }

        // Crash points fire at most once each, in order.
        let mut crash = None;
        while let Some(point) = self.schedule.crashes[link].get(st.next_crash) {
            if point.at_send > now {
                break;
            }
            st.next_crash += 1;
            self.crashes.fetch_add(1, Ordering::Relaxed);
            crash = Some(CrashSignal {
                outage: self.schedule.profile.crash_outage,
            });
        }

        // Partition windows: buffer droppable traffic inside an open
        // window; flush the buffer the first send at or past its end.
        let mut inside_partition = false;
        while let Some(window) = self.schedule.partitions[link].get(st.next_partition) {
            if now < window.from {
                break;
            }
            if now < window.until {
                inside_partition = true;
                break;
            }
            st.next_partition += 1;
            let healed = std::mem::take(&mut st.partition_buf);
            out.extend(healed);
        }

        if is_reliable(&msg) {
            // The durable commit channel bypasses every fault class.
            out.push(msg);
            return crash;
        }

        if inside_partition {
            st.partition_buf.push(msg);
            self.partitioned.fetch_add(1, Ordering::Relaxed);
            return crash;
        }

        let draw = st.rng.next_f64();
        let p = &self.schedule.profile;
        if draw < p.drop_rate {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else if draw < p.drop_rate + p.dup_rate {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            out.push(msg);
            out.push(msg);
        } else if draw < p.drop_rate + p.dup_rate + p.delay_rate {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            let due = now + p.delay_span.max(1);
            st.held.push((due, msg));
        } else {
            out.push(msg);
        }
        crash
    }

    /// Quiesce the plane: deactivate fault injection and flush every
    /// hold buffer (delayed and partition-buffered messages) through
    /// `deliver(link, msg)`. Call before the final drain so no message
    /// is still parked in the plane when invariants are checked.
    pub fn quiesce(&self, mut deliver: impl FnMut(usize, RequestMsg)) {
        self.active.store(false, Ordering::Release);
        for (link, slot) in self.links.iter().enumerate() {
            let mut st = slot.lock().expect("fault link poisoned");
            for (_, msg) in st.held.drain(..) {
                deliver(link, msg);
            }
            for msg in st.partition_buf.drain(..) {
                deliver(link, msg);
            }
        }
    }

    /// Whether the plane is still injecting faults.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Snapshot of everything injected so far.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            partitioned: self.partitioned.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{
        AccessMode, CcMethod, LogicalItemId, PhysicalItemId, SiteId, Timestamp, TsTuple, TxnId,
    };

    fn access(txn: u64) -> RequestMsg {
        RequestMsg::Access {
            txn: TxnId(txn),
            item: PhysicalItemId::new(LogicalItemId(1), SiteId(0)),
            mode: AccessMode::Write,
            method: CcMethod::TwoPhaseLocking,
            ts: TsTuple::new(Timestamp(1), 10),
        }
    }

    fn release(txn: u64) -> RequestMsg {
        RequestMsg::Release {
            txn: TxnId(txn),
            item: PhysicalItemId::new(LogicalItemId(1), SiteId(0)),
            write_value: Some(7),
            commit_ts: Timestamp::ZERO,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let profile = FaultProfile {
            partitions_per_link: 2,
            crashes: 3,
            ..FaultProfile::default()
        };
        let a = FaultSchedule::generate(profile.clone(), 42, 4);
        let b = FaultSchedule::generate(profile, 42, 4);
        assert_eq!(a.partitions, b.partitions);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn different_seeds_differ() {
        let profile = FaultProfile {
            partitions_per_link: 2,
            crashes: 3,
            ..FaultProfile::default()
        };
        let a = FaultSchedule::generate(profile.clone(), 1, 4);
        let b = FaultSchedule::generate(profile, 2, 4);
        assert!(a.partitions != b.partitions || a.crashes != b.crashes);
    }

    #[test]
    fn drop_rate_one_drops_every_droppable_message() {
        let schedule = FaultSchedule::generate(
            FaultProfile {
                drop_rate: 1.0,
                ..FaultProfile::default()
            },
            7,
            1,
        );
        let plane = FaultPlane::new(schedule);
        let mut out = Vec::new();
        for t in 0..50 {
            plane.on_send(0, access(t), &mut out);
        }
        assert!(out.is_empty(), "every droppable message dropped");
        assert_eq!(plane.counters().dropped, 50);
    }

    #[test]
    fn reliable_messages_bypass_every_fault() {
        let schedule = FaultSchedule::generate(
            FaultProfile {
                drop_rate: 1.0,
                partitions_per_link: 1,
                partition_len: 1000,
                horizon: 1,
                ..FaultProfile::default()
            },
            7,
            1,
        );
        let plane = FaultPlane::new(schedule);
        let mut out = Vec::new();
        for t in 0..20 {
            plane.on_send(0, release(t), &mut out);
        }
        assert_eq!(out.len(), 20, "durable commit channel is untouched");
        assert_eq!(plane.counters().dropped, 0);
    }

    #[test]
    fn duplication_delivers_twice() {
        let schedule = FaultSchedule::generate(
            FaultProfile {
                dup_rate: 1.0,
                ..FaultProfile::default()
            },
            7,
            1,
        );
        let plane = FaultPlane::new(schedule);
        let mut out = Vec::new();
        plane.on_send(0, access(1), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(plane.counters().duplicated, 1);
    }

    #[test]
    fn delay_holds_then_releases_after_span() {
        let schedule = FaultSchedule::generate(
            FaultProfile {
                delay_rate: 1.0,
                delay_span: 2,
                ..FaultProfile::default()
            },
            7,
            1,
        );
        let plane = FaultPlane::new(schedule);
        let mut out = Vec::new();
        plane.on_send(0, access(1), &mut out);
        assert!(out.is_empty(), "held");
        // Sends 2 and 3: both also delayed (rate 1.0); send 3 releases
        // the first held message (due at send 1 + span 2 = 3).
        plane.on_send(0, access(2), &mut out);
        assert!(out.is_empty());
        plane.on_send(0, access(3), &mut out);
        assert_eq!(out.len(), 1, "first message released after its span");
        assert!(matches!(out[0], RequestMsg::Access { txn: TxnId(1), .. }));
    }

    #[test]
    fn partition_buffers_then_flushes_at_heal() {
        let schedule = FaultSchedule::generate(
            FaultProfile {
                partitions_per_link: 1,
                partition_len: 3,
                horizon: 1, // window starts at send 1
                ..FaultProfile::default()
            },
            7,
            1,
        );
        let window = schedule.partitions[0][0];
        assert_eq!(window.from, 1);
        let plane = FaultPlane::new(schedule);
        let mut out = Vec::new();
        for t in 1..=3 {
            plane.on_send(0, access(t), &mut out);
        }
        assert!(out.is_empty(), "window [1,4) buffers all three");
        assert_eq!(plane.counters().partitioned, 3);
        plane.on_send(0, access(4), &mut out);
        assert_eq!(out.len(), 4, "heal flushes the buffer plus the new send");
    }

    #[test]
    fn crash_points_fire_once_at_their_send() {
        let schedule = FaultSchedule::generate(
            FaultProfile {
                crashes: 1,
                horizon: 1, // crash at send 1 on some link
                ..FaultProfile::default()
            },
            7,
            2,
        );
        let link = schedule
            .crashes
            .iter()
            .position(|c| !c.is_empty())
            .expect("one crash scheduled");
        let plane = FaultPlane::new(schedule);
        let mut out = Vec::new();
        let first = plane.on_send(link, access(1), &mut out);
        assert!(first.is_some(), "crash fires at its send");
        let second = plane.on_send(link, access(2), &mut out);
        assert!(second.is_none(), "crash fires only once");
        assert_eq!(plane.counters().crashes, 1);
    }

    #[test]
    fn quiesce_flushes_all_buffers_and_deactivates() {
        let schedule = FaultSchedule::generate(
            FaultProfile {
                delay_rate: 1.0,
                delay_span: 1000,
                ..FaultProfile::default()
            },
            7,
            1,
        );
        let plane = FaultPlane::new(schedule);
        let mut out = Vec::new();
        for t in 0..5 {
            plane.on_send(0, access(t), &mut out);
        }
        assert!(out.is_empty());
        let mut flushed = Vec::new();
        plane.quiesce(|link, msg| flushed.push((link, msg)));
        assert_eq!(flushed.len(), 5, "every held message flushed");
        assert!(!plane.is_active());
        // After quiesce the plane is a passthrough.
        plane.on_send(0, access(99), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sampled_profiles_vary_with_seed_and_replay_exactly() {
        let a = FaultProfile::sampled(1);
        let b = FaultProfile::sampled(1);
        let c = FaultProfile::sampled(2);
        assert_eq!(a, b, "same seed, same profile");
        assert_ne!(a, c, "different seeds explore different chaos mixes");
        assert!(a.drop_rate <= 0.10 && a.dup_rate <= 0.10 && a.delay_rate <= 0.10);
    }

    #[test]
    fn deterministic_single_threaded_replay_is_exact() {
        let run = |seed: u64| {
            let schedule = FaultSchedule::generate(FaultProfile::sampled(seed), seed, 2);
            let plane = FaultPlane::new(schedule);
            let mut out = Vec::new();
            let mut crashes = 0u32;
            for t in 0..200 {
                if plane
                    .on_send((t % 2) as usize, access(t), &mut out)
                    .is_some()
                {
                    crashes += 1;
                }
            }
            (out, crashes, plane.counters())
        };
        let (out_a, crashes_a, counters_a) = run(99);
        let (out_b, crashes_b, counters_b) = run(99);
        assert_eq!(out_a, out_b);
        assert_eq!(crashes_a, crashes_b);
        assert_eq!(counters_a, counters_b);
    }
}
