//! Envelope stamping and message accounting.

use std::collections::BTreeMap;

use dbmodel::SiteId;
use simkit::time::SimTime;

use crate::latency::LatencyModel;

/// Coarse message categories tracked for the communication-cost experiment
/// (E4). They correspond to the message kinds of the paper's protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgCategory {
    /// A read/write request sent from a request issuer to a queue manager.
    Request,
    /// A PA acceptance acknowledgement (accepted, grant to follow).
    Ack,
    /// A lock grant (normal or pre-scheduled) sent back to the issuer.
    Grant,
    /// A T/O rejection forcing a transaction restart.
    Reject,
    /// A PA backoff timestamp proposal.
    Backoff,
    /// A PA updated-timestamp broadcast after collecting backoffs.
    TimestampUpdate,
    /// A lock release (or semi-lock demotion) from issuer to queue manager.
    Release,
    /// Abort/cleanup traffic (deadlock victims, rejected T/O transactions).
    Abort,
}

impl MsgCategory {
    /// All categories, for iteration in reports.
    pub const ALL: [MsgCategory; 8] = [
        MsgCategory::Request,
        MsgCategory::Ack,
        MsgCategory::Grant,
        MsgCategory::Reject,
        MsgCategory::Backoff,
        MsgCategory::TimestampUpdate,
        MsgCategory::Release,
        MsgCategory::Abort,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MsgCategory::Request => "request",
            MsgCategory::Ack => "ack",
            MsgCategory::Grant => "grant",
            MsgCategory::Reject => "reject",
            MsgCategory::Backoff => "backoff",
            MsgCategory::TimestampUpdate => "ts-update",
            MsgCategory::Release => "release",
            MsgCategory::Abort => "abort",
        }
    }
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// When the message was handed to the network.
    pub sent_at: SimTime,
    /// When the destination receives it.
    pub deliver_at: SimTime,
    /// Category, for accounting.
    pub category: MsgCategory,
    /// The protocol payload.
    pub payload: M,
}

/// Per-category and per-link message counters.
#[derive(Debug, Clone, Default)]
pub struct MsgStats {
    by_category: BTreeMap<MsgCategory, u64>,
    total: u64,
    remote: u64,
}

impl MsgStats {
    /// Total messages sent.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Messages that crossed sites (excludes same-site messages).
    pub fn remote(&self) -> u64 {
        self.remote
    }

    /// Count for one category.
    pub fn count(&self, cat: MsgCategory) -> u64 {
        self.by_category.get(&cat).copied().unwrap_or(0)
    }

    /// Iterate over `(category, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (MsgCategory, u64)> + '_ {
        self.by_category.iter().map(|(&k, &v)| (k, v))
    }

    fn record(&mut self, cat: MsgCategory, is_remote: bool) {
        *self.by_category.entry(cat).or_insert(0) += 1;
        self.total += 1;
        if is_remote {
            self.remote += 1;
        }
    }
}

/// The network: stamps envelopes with delivery times (FIFO per directed link)
/// and counts traffic.
pub struct NetworkModel {
    latency: LatencyModel,
    stats: MsgStats,
    // Last delivery time per (from, to) link, to enforce FIFO delivery.
    last_delivery: BTreeMap<(SiteId, SiteId), SimTime>,
}

impl NetworkModel {
    /// Create a network from a latency model.
    pub fn new(latency: LatencyModel) -> Self {
        NetworkModel {
            latency,
            stats: MsgStats::default(),
            last_delivery: BTreeMap::new(),
        }
    }

    /// Stamp a payload into an [`Envelope`], assigning its delivery time and
    /// recording it in the statistics.
    pub fn send<M>(
        &mut self,
        now: SimTime,
        from: SiteId,
        to: SiteId,
        category: MsgCategory,
        payload: M,
    ) -> Envelope<M> {
        let delay = self.latency.delay(from, to);
        let mut deliver_at = now + delay;
        let link = (from, to);
        if let Some(&last) = self.last_delivery.get(&link) {
            if deliver_at < last {
                deliver_at = last;
            }
        }
        self.last_delivery.insert(link, deliver_at);
        self.stats.record(category, from != to);
        Envelope {
            from,
            to,
            sent_at: now,
            deliver_at,
            category,
            payload,
        }
    }

    /// The accumulated message statistics.
    pub fn stats(&self) -> &MsgStats {
        &self.stats
    }

    /// Expected one-way delay between two sites (used by analytic estimators).
    pub fn mean_delay_micros(&self, from: SiteId, to: SiteId) -> f64 {
        self.latency.mean_delay_micros(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::DelaySpec;
    use simkit::rng::SimRng;

    fn net_fixed(local: u64, remote: u64) -> NetworkModel {
        NetworkModel::new(LatencyModel::new(
            DelaySpec::Fixed(local),
            DelaySpec::Fixed(remote),
            SimRng::new(7),
        ))
    }

    #[test]
    fn send_stamps_delivery_time() {
        let mut net = net_fixed(1, 50);
        let env = net.send(
            SimTime::from_micros(100),
            SiteId(0),
            SiteId(1),
            MsgCategory::Request,
            "hi",
        );
        assert_eq!(env.sent_at, SimTime::from_micros(100));
        assert_eq!(env.deliver_at, SimTime::from_micros(150));
        assert_eq!(env.payload, "hi");
        let env2 = net.send(
            SimTime::from_micros(100),
            SiteId(2),
            SiteId(2),
            MsgCategory::Grant,
            "lo",
        );
        assert_eq!(env2.deliver_at, SimTime::from_micros(101));
    }

    #[test]
    fn fifo_per_link_is_enforced() {
        let mut net = NetworkModel::new(LatencyModel::new(
            DelaySpec::Fixed(0),
            DelaySpec::Uniform(10, 1000),
            SimRng::new(3),
        ));
        let mut prev = SimTime::ZERO;
        for i in 0..200 {
            let env = net.send(
                SimTime::from_micros(i),
                SiteId(0),
                SiteId(1),
                MsgCategory::Request,
                (),
            );
            assert!(env.deliver_at >= prev, "link delivery must be FIFO");
            prev = env.deliver_at;
        }
    }

    #[test]
    fn stats_count_by_category_and_remote() {
        let mut net = net_fixed(0, 10);
        net.send(
            SimTime::ZERO,
            SiteId(0),
            SiteId(1),
            MsgCategory::Request,
            (),
        );
        net.send(
            SimTime::ZERO,
            SiteId(0),
            SiteId(0),
            MsgCategory::Request,
            (),
        );
        net.send(SimTime::ZERO, SiteId(1), SiteId(0), MsgCategory::Grant, ());
        assert_eq!(net.stats().total(), 3);
        assert_eq!(net.stats().remote(), 2);
        assert_eq!(net.stats().count(MsgCategory::Request), 2);
        assert_eq!(net.stats().count(MsgCategory::Grant), 1);
        assert_eq!(net.stats().count(MsgCategory::Abort), 0);
        assert_eq!(net.stats().iter().count(), 2);
    }

    #[test]
    fn category_labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            MsgCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), MsgCategory::ALL.len());
    }
}
