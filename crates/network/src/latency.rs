//! Transmission-delay model.

use dbmodel::SiteId;
use simkit::dist::{Distribution, Exponential, Fixed, Uniform};
use simkit::rng::SimRng;
use simkit::time::Duration;

/// Specification of a delay distribution, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelaySpec {
    /// Always exactly this many microseconds.
    Fixed(u64),
    /// Uniform between the two bounds (inclusive low, exclusive high).
    Uniform(u64, u64),
    /// Exponential with the given mean.
    ExponentialMean(u64),
}

impl DelaySpec {
    fn sample(&self, rng: &mut SimRng) -> Duration {
        let us = match *self {
            DelaySpec::Fixed(v) => Fixed(v as f64).sample(rng),
            DelaySpec::Uniform(lo, hi) => {
                Uniform::new(lo as f64, hi.max(lo + 1) as f64).sample(rng)
            }
            DelaySpec::ExponentialMean(m) => {
                if m == 0 {
                    0.0
                } else {
                    Exponential::with_mean(m as f64).sample(rng)
                }
            }
        };
        Duration::from_micros(us.max(0.0).round() as u64)
    }

    /// Expected delay of this specification.
    pub fn mean_micros(&self) -> f64 {
        match *self {
            DelaySpec::Fixed(v) => v as f64,
            DelaySpec::Uniform(lo, hi) => (lo as f64 + hi.max(lo + 1) as f64) / 2.0,
            DelaySpec::ExponentialMean(m) => m as f64,
        }
    }
}

/// Latency model distinguishing intra-site ("local") from inter-site
/// ("remote") messages.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    local: DelaySpec,
    remote: DelaySpec,
    rng: SimRng,
}

impl LatencyModel {
    /// Create a latency model from local/remote delay specs and an RNG stream.
    pub fn new(local: DelaySpec, remote: DelaySpec, rng: SimRng) -> Self {
        LatencyModel { local, remote, rng }
    }

    /// A model with zero delay everywhere — useful in unit tests where only
    /// protocol logic matters.
    pub fn instantaneous() -> Self {
        LatencyModel::new(DelaySpec::Fixed(0), DelaySpec::Fixed(0), SimRng::new(0))
    }

    /// Sample the delay of one message from `from` to `to`.
    pub fn delay(&mut self, from: SiteId, to: SiteId) -> Duration {
        let spec = if from == to { self.local } else { self.remote };
        spec.sample(&mut self.rng)
    }

    /// Expected one-way delay between two (distinct or equal) sites.
    pub fn mean_delay_micros(&self, from: SiteId, to: SiteId) -> f64 {
        if from == to {
            self.local.mean_micros()
        } else {
            self.remote.mean_micros()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_delay_is_exact() {
        let mut m = LatencyModel::new(DelaySpec::Fixed(5), DelaySpec::Fixed(100), SimRng::new(1));
        assert_eq!(m.delay(SiteId(0), SiteId(0)), Duration::from_micros(5));
        assert_eq!(m.delay(SiteId(0), SiteId(1)), Duration::from_micros(100));
    }

    #[test]
    fn uniform_delay_in_bounds() {
        let mut m = LatencyModel::new(
            DelaySpec::Uniform(10, 20),
            DelaySpec::Uniform(50, 60),
            SimRng::new(2),
        );
        for _ in 0..1000 {
            let d = m.delay(SiteId(0), SiteId(0)).as_micros();
            assert!((10..=20).contains(&d), "local {d}");
            let d = m.delay(SiteId(0), SiteId(3)).as_micros();
            assert!((50..=60).contains(&d), "remote {d}");
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut m = LatencyModel::new(
            DelaySpec::ExponentialMean(0),
            DelaySpec::ExponentialMean(200),
            SimRng::new(3),
        );
        assert_eq!(m.delay(SiteId(1), SiteId(1)), Duration::ZERO);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| m.delay(SiteId(0), SiteId(1)).as_micros())
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 200.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn mean_micros_matches_spec() {
        assert_eq!(DelaySpec::Fixed(7).mean_micros(), 7.0);
        assert_eq!(DelaySpec::Uniform(10, 30).mean_micros(), 20.0);
        assert_eq!(DelaySpec::ExponentialMean(42).mean_micros(), 42.0);
        let m = LatencyModel::new(DelaySpec::Fixed(1), DelaySpec::Fixed(9), SimRng::new(0));
        assert_eq!(m.mean_delay_micros(SiteId(0), SiteId(0)), 1.0);
        assert_eq!(m.mean_delay_micros(SiteId(0), SiteId(2)), 9.0);
    }

    #[test]
    fn instantaneous_model_is_zero() {
        let mut m = LatencyModel::instantaneous();
        assert_eq!(m.delay(SiteId(0), SiteId(5)), Duration::ZERO);
    }
}
