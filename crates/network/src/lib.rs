//! # network — simulated message transport between sites
//!
//! The paper's protocols exchange messages between request issuers (at user
//! sites) and data-queue managers (at data sites). Only two properties of the
//! transport matter to the protocols and to the paper's evaluation axes:
//! the *transmission delay* (parameter (3) in the paper's list of relevant
//! system parameters) and the *number of messages* (PA's communication cost
//! grows with load). This crate models exactly those two things:
//!
//! * [`LatencyModel`] — how long a message takes from site `a` to site `b`
//!   (separate local and remote delay distributions),
//! * [`NetworkModel`] — stamps envelopes with delivery times and keeps
//!   per-category message counts,
//! * [`Envelope`] — a payload in flight, tagged with source, destination and
//!   delivery time.
//!
//! Delivery between a given pair of sites is FIFO: the model never assigns a
//! later-sent message an earlier delivery time than an earlier-sent one on
//! the same directed link.

pub mod latency;
pub mod model;

pub use latency::{DelaySpec, LatencyModel};
pub use model::{Envelope, MsgCategory, MsgStats, NetworkModel};
