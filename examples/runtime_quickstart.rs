//! Runtime quickstart: serve live concurrent transactions from 8 threads.
//!
//! A 4-shard [`runtime::Database`] holds 32 "accounts". Eight client
//! threads hammer it concurrently, each thread alternating between the
//! three concurrency-control protocols — 2PL, Basic T/O and Precedence
//! Agreement — on the *same* data, exactly the coexistence the paper's
//! unified algorithm establishes. Every transaction transfers one unit
//! between two accounts, so the total balance is an invariant; at the end
//! the captured execution log is replayed through the serializability
//! oracle.
//!
//! Run with: `cargo run --example runtime_quickstart`

use dbmodel::{CcMethod, LogicalItemId};
use runtime::{Database, RuntimeConfig, TxnSpec};

const ACCOUNTS: u64 = 32;
const INITIAL: i64 = 100;
const THREADS: u64 = 8;
const TRANSFERS_PER_THREAD: u64 = 50;

fn main() {
    let db = Database::open(RuntimeConfig {
        num_shards: 4,
        num_items: ACCOUNTS,
        initial_value: INITIAL,
        ..RuntimeConfig::default()
    })
    .expect("valid config");

    let workers: Vec<_> = (0..THREADS)
        .map(|thread| {
            let db = db.clone();
            std::thread::spawn(move || {
                for k in 0..TRANSFERS_PER_THREAD {
                    // Each thread cycles through the three protocols.
                    let method = CcMethod::ALL[((thread + k) % 3) as usize];
                    let from = LogicalItemId((thread * 7 + k) % ACCOUNTS);
                    let to = LogicalItemId((thread * 7 + k * 3 + 1) % ACCOUNTS);
                    if from == to {
                        continue;
                    }
                    let spec = TxnSpec::new().write(from).write(to).method(method);
                    // Read-modify-write: items in the write set are locked
                    // exclusively; their current values arrive with the
                    // grants.
                    db.run_transaction(&spec, |reads| {
                        vec![(from, reads[&from] - 1), (to, reads[&to] + 1)]
                    })
                    .expect("transfer commits");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker panicked");
    }

    // Audit the final balances in one big read-only transaction.
    let audit = TxnSpec::new().reads((0..ACCOUNTS).map(LogicalItemId));
    let receipt = db
        .run_transaction(&audit, |_| vec![])
        .expect("audit commits");
    let total: i64 = receipt.reads.values().sum();

    let stats = db.stats();
    let report = db.shutdown().expect("first shutdown");

    println!("runtime quickstart — {THREADS} threads over 4 shards");
    println!("  committed:          {}", stats.committed);
    println!("  T/O rejections:     {}", stats.rejected_restarts);
    println!("  deadlock restarts:  {}", stats.deadlock_restarts);
    println!("  PA backoff rounds:  {}", stats.backoff_rounds);
    println!("  implemented ops:    {}", stats.implemented_ops);
    println!(
        "  total balance:      {total} (expected {})",
        ACCOUNTS as i64 * INITIAL
    );
    assert_eq!(total, ACCOUNTS as i64 * INITIAL, "transfers conserve money");

    match report.serializable() {
        Ok(order) => println!(
            "  execution log certified conflict-serializable ({} committed txns)",
            order.len()
        ),
        Err(cycle) => panic!("execution not serializable: {cycle}"),
    }
}
