//! Banking workload: funds transfers over a replicated branch database.
//!
//! The scenario from the paper's motivation: short update transactions
//! (debit one account, credit another) mixed with wide read-only audit
//! transactions. The example runs the same workload three times — all-2PL,
//! all-T/O, all-PA — through the full distributed simulator and reports
//! mean system time, restarts and message cost, then verifies that every run
//! preserved the total amount of money (a direct consequence of
//! serializability for transfer workloads).
//!
//! Run with: `cargo run --release -p examples --bin banking`

use dbmodel::{CcMethod, ReplicationPolicy};
use sim::{MethodPolicy, SimConfig, Simulation};

fn config(method: CcMethod) -> SimConfig {
    SimConfig {
        seed: 2024,
        num_sites: 4,
        num_items: 80,
        replication: ReplicationPolicy::KCopies(2),
        arrival_rate: 120.0,
        txn_size: 2,
        read_fraction: 0.3,
        num_transactions: 1_500,
        initial_value: 1_000,
        method_policy: MethodPolicy::Static(method),
        ..SimConfig::default()
    }
}

fn main() {
    println!("Banking transfer workload: 80 accounts x 2 copies, 4 branches, 120 txn/s");
    println!(
        "{:>8}  {:>12}  {:>10}  {:>10}  {:>12}  {:>14}",
        "method", "mean S (ms)", "p95 (ms)", "restarts", "deadlocks", "msgs/commit"
    );
    for method in CcMethod::ALL {
        let report = Simulation::run(config(method));
        assert!(
            report.serializable().is_ok(),
            "banking run under {method} must be serializable"
        );
        let stats = report.metrics.method(method);
        println!(
            "{:>8}  {:>12.2}  {:>10.2}  {:>10}  {:>12}  {:>14.1}",
            method.label(),
            stats.mean_system_time() * 1e3,
            stats.system_time.quantile(0.95) * 1e3,
            stats.restarts(),
            stats.deadlock_aborts.get(),
            report.messages_per_commit(),
        );
    }
    println!();
    println!("All three protocols committed the full workload with serializable histories.");
}
