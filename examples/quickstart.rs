//! Quickstart: drive the unified concurrency-control engine by hand.
//!
//! Three transactions — one per protocol — access the same two items through
//! one queue manager. The example shows the full message conversation
//! (requests, grants, releases), that all three protocols coexist on the same
//! data, and that the resulting execution is conflict serializable.
//!
//! Run with: `cargo run -p examples --bin quickstart`

use dbmodel::{
    AccessMode, CcMethod, LogSet, LogicalItemId, PhysicalItemId, SiteId, Timestamp, Transaction,
    TsTuple, TxnId,
};
use sercheck::check_serializable;
use unified_cc::{EnforcementMode, QmEvent, QueueManager, RequestIssuer, RiAction};

fn main() {
    let site = SiteId(0);
    let item_x = PhysicalItemId::new(LogicalItemId(1), site);
    let item_y = PhysicalItemId::new(LogicalItemId(2), site);

    // One queue manager holding both items, initialised to 100.
    let mut qm = QueueManager::new(site);
    qm.add_item(item_x, 100, EnforcementMode::SemiLock);
    qm.add_item(item_y, 100, EnforcementMode::SemiLock);

    let mut logs = LogSet::new();

    // Three transactions, one per protocol, each transferring between x and y.
    let specs = [
        (1u64, CcMethod::TwoPhaseLocking, 10u64),
        (2, CcMethod::TimestampOrdering, 20),
        (3, CcMethod::PrecedenceAgreement, 30),
    ];

    for (id, method, ts) in specs {
        let txn = Transaction::builder(TxnId(id), site)
            .method(method)
            .read(LogicalItemId(1))
            .write(LogicalItemId(2))
            .build();
        let accesses = vec![(item_x, AccessMode::Read), (item_y, AccessMode::Write)];
        let mut ri = RequestIssuer::new(txn, TsTuple::new(Timestamp(ts), 5), accesses);

        println!(
            "== {} transaction T{id} (timestamp {ts}) ==",
            method.label()
        );
        let mut outbox = ri.start().sends;
        // Keep exchanging messages until the issuer has nothing left to send.
        while !outbox.is_empty() {
            let mut replies = Vec::new();
            for msg in outbox.drain(..) {
                println!("  RI -> QM : {msg:?}");
                let out = qm.handle(site, &msg);
                for event in out.events {
                    if let QmEvent::Implemented {
                        item, txn, access, ..
                    } = event
                    {
                        println!("     QM implements {access:?} of {txn} on {item}");
                        logs.record(item, txn, access);
                    }
                }
                replies.extend(out.replies);
            }
            for reply in replies {
                println!("  QM -> RI : {reply:?}");
                let out = ri.on_reply(&reply);
                for action in &out.actions {
                    if *action == RiAction::StartExecution {
                        // The "local computing phase": read x, write x+1 into y.
                        let read = ri.read_value(LogicalItemId(1)).unwrap_or(0);
                        ri.set_write_value(LogicalItemId(2), read + 1);
                        println!(
                            "     local compute: read x = {read}, will write y = {}",
                            read + 1
                        );
                        outbox.extend(ri.on_execution_done().sends);
                    }
                }
                outbox.extend(out.sends);
            }
        }
        println!(
            "  committed; x = {:?}, y = {:?}\n",
            qm.value_of(item_x).unwrap(),
            qm.value_of(item_y).unwrap()
        );
    }

    match check_serializable(&logs) {
        Ok(order) => println!("execution is conflict serializable; serialization order: {order:?}"),
        Err(err) => println!("execution is NOT serializable: {err}"),
    }
}
