//! Dynamic tuning: watch the STL selector react to a changing workload.
//!
//! The paper's criticism of static concurrency control is that "the
//! originally chosen algorithm may not always be the best as the system
//! parameters change". This example runs the STL-dynamic policy over three
//! load regimes (light, moderate, heavy) and prints the per-regime protocol
//! mix the selector converged to, alongside the STL estimates for a sample
//! transaction in each regime — evaluated both fresh and through the
//! epoch-cached selector, whose decision must match byte for byte while
//! costing a hash lookup instead of a dynamic-programming grid.
//!
//! Run with: `cargo run --release -p examples --bin dynamic_tuning`

use std::time::Instant;

use dbmodel::{CcMethod, LogicalItemId, SiteId, Transaction, TxnId};
use selection::{CacheSettings, CachedStlSelector, StlSelector};
use sim::{MethodPolicy, SimConfig, Simulation};

fn main() {
    println!("STL-dynamic selection across load regimes");
    let regimes = [("light", 25.0), ("moderate", 120.0), ("heavy", 300.0)];
    for (label, lambda) in regimes {
        let config = SimConfig {
            seed: 5,
            num_sites: 4,
            num_items: 60,
            arrival_rate: lambda,
            txn_size: 4,
            read_fraction: 0.6,
            num_transactions: 1_200,
            local_compute: simkit::time::Duration::from_millis(10),
            method_policy: MethodPolicy::DynamicStl,
            ..SimConfig::default()
        };
        let mut simulation = Simulation::new(config);
        simulation.run_to_completion();

        // Ask the selector what it would do with a representative transaction
        // given the statistics this regime produced.
        let sample = Transaction::builder(TxnId(u64::MAX), SiteId(0))
            .read(LogicalItemId(1))
            .read(LogicalItemId(2))
            .write(LogicalItemId(3))
            .write(LogicalItemId(4))
            .build();
        let mut selector = StlSelector::with_settings(0, 0);
        let fresh_began = Instant::now();
        let decision = selector.select(&sample, simulation.catalog(), simulation.metrics());
        let fresh_cost = fresh_began.elapsed();

        // The cached selector agrees bit for bit (exact keys, same epoch
        // snapshot) and answers repeat shapes from the decision grid.
        let mut cached = CachedStlSelector::with_settings(CacheSettings {
            quant_rel: 0.0,
            warmup_commits: 0,
            explore_every: 0,
            ..CacheSettings::default()
        });
        let first = cached.select(&sample, simulation.catalog(), simulation.metrics());
        assert_eq!(first.method, decision.method);
        assert_eq!(first.stl_2pl.to_bits(), decision.stl_2pl.to_bits());
        let hit_began = Instant::now();
        let hit = cached.select(&sample, simulation.catalog(), simulation.metrics());
        let hit_cost = hit_began.elapsed();
        assert_eq!(hit.method, decision.method);
        assert_eq!(cached.cache_stats().hits, 1);

        let report = simulation.into_report();
        assert!(report.serializable().is_ok());
        println!("\n-- {label} load ({lambda} txn/s) --");
        println!(
            "  selector mix: 2PL={} T/O={} PA={}",
            report
                .selection_counts
                .get(&CcMethod::TwoPhaseLocking)
                .copied()
                .unwrap_or(0),
            report
                .selection_counts
                .get(&CcMethod::TimestampOrdering)
                .copied()
                .unwrap_or(0),
            report
                .selection_counts
                .get(&CcMethod::PrecedenceAgreement)
                .copied()
                .unwrap_or(0),
        );
        println!(
            "  sample 2-read/2-write txn: STL_2PL={:.3} STL_T/O={:.3} STL_PA={:.3} -> {}",
            decision.stl_2pl,
            decision.stl_to,
            decision.stl_pa,
            decision.method.label()
        );
        println!(
            "  mean S = {:.2} ms, throughput = {:.1} txn/s, restarts = {}",
            report.mean_system_time() * 1e3,
            report.throughput(),
            report.total_restarts()
        );
        println!(
            "  selection cost: fresh {:.1} µs vs cached hit {:.2} µs (identical decision)",
            fresh_cost.as_secs_f64() * 1e6,
            hit_cost.as_secs_f64() * 1e6
        );
    }
}
