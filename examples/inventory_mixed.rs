//! Mixed-protocol inventory workload: the unified system's selling point.
//!
//! A warehouse database serves two very different transaction classes at the
//! same time:
//!
//! * *order lines* — tiny write-heavy transactions (reserve one SKU), which
//!   the paper notes favour 2PL ("each transaction only accesses one data
//!   item through a write operation"), and
//! * *stock checks* — medium read-mostly transactions, which favour T/O or
//!   PA under load.
//!
//! Instead of forcing one protocol on everyone, the unified system lets each
//! class use its own: this example runs the mixed assignment and compares it
//! with forcing either class's favourite on the whole system.
//!
//! Run with: `cargo run --release -p examples --bin inventory_mixed`

use dbmodel::CcMethod;
use sim::{MethodPolicy, SimConfig, Simulation};

fn config(policy: MethodPolicy) -> SimConfig {
    SimConfig {
        seed: 99,
        num_sites: 4,
        num_items: 100,
        arrival_rate: 200.0,
        txn_size: 3,
        read_fraction: 0.6,
        access_skew: 0.6,
        num_transactions: 1_500,
        method_policy: policy,
        ..SimConfig::default()
    }
}

fn main() {
    println!("Inventory workload (Zipf-skewed SKU access, 200 txn/s)");
    let policies = [
        ("all 2PL", MethodPolicy::Static(CcMethod::TwoPhaseLocking)),
        ("all T/O", MethodPolicy::Static(CcMethod::TimestampOrdering)),
        (
            "all PA",
            MethodPolicy::Static(CcMethod::PrecedenceAgreement),
        ),
        (
            "mixed 50/25/25",
            MethodPolicy::Mix {
                p_2pl: 0.5,
                p_to: 0.25,
            },
        ),
        ("STL dynamic", MethodPolicy::DynamicStl),
    ];
    println!(
        "{:>16}  {:>12}  {:>12}  {:>10}  {:>11}",
        "assignment", "mean S (ms)", "thrpt (t/s)", "restarts", "deadlocks"
    );
    for (label, policy) in policies {
        let report = Simulation::run(config(policy));
        assert!(
            report.serializable().is_ok(),
            "{label} must stay serializable"
        );
        println!(
            "{:>16}  {:>12.2}  {:>12.1}  {:>10}  {:>11}",
            label,
            report.mean_system_time() * 1e3,
            report.throughput(),
            report.total_restarts(),
            report.total_deadlocks(),
        );
    }
    println!();
    println!("Every assignment — including the mixed ones — produced a serializable execution,");
    println!("which is exactly Theorem 2 of the paper exercised end to end.");
}
