//! Shared helpers for the runnable examples (each example is a binary in
//! `src/bin/`).
